"""Structural Verilog emission (and re-import) for netlists.

A reproduction of a hardware paper should hand its netlists to hardware
people in their language.  :func:`emit_verilog` renders any
:class:`~repro.hardware.netlist.Netlist` as a single synthesizable
structural module using continuous assignments; :func:`parse_verilog`
reads that same subset back into a :class:`Netlist`.

The round trip is the verification story: tests emit a netlist, parse
it back, and require input/output behaviour to match gate for gate —
so the emitted Verilog is known to *mean* what the Python model
computes, without needing an external simulator.

Subset emitted/parsed: one module; scalar ``input``/``output``/``wire``
declarations (comma-separated lists allowed); ``assign`` statements
whose right-hand side is one of ``a``, ``~a``, ``a & b``, ``a | b``,
``a ^ b``, ``~(a & b)``, ``~(a | b)``, ``~(a ^ b)``, ``s ? b : a``,
``1'b0`` or ``1'b1``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..exceptions import ConfigurationError
from .gates import GateType
from .netlist import Netlist

__all__ = ["emit_verilog", "parse_verilog", "sanitize_identifier"]

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def sanitize_identifier(name: str) -> str:
    """Map a port name to a legal Verilog identifier.

    Bracketed indices like ``s[3]`` become ``s_3``; any remaining
    illegal character becomes ``_``.
    """
    candidate = name.replace("[", "_").replace("]", "").replace(".", "_")
    candidate = re.sub(r"[^A-Za-z0-9_$]", "_", candidate)
    if not candidate or not _IDENTIFIER_RE.match(candidate):
        candidate = f"p_{candidate}"
    return candidate


_BINARY_OPERATORS = {
    GateType.AND: "&",
    GateType.OR: "|",
    GateType.XOR: "^",
}
_NEGATED_OPERATORS = {
    GateType.NAND: "&",
    GateType.NOR: "|",
    GateType.XNOR: "^",
}


def emit_verilog(netlist: Netlist, module_name: str = "") -> str:
    """Render *netlist* as one structural Verilog module."""
    module = sanitize_identifier(module_name or netlist.name or "netlist")
    input_names: Dict[int, str] = {}
    seen: Dict[str, int] = {}
    for name, net in netlist.inputs.items():
        identifier = sanitize_identifier(name)
        if identifier in seen:
            raise ConfigurationError(
                f"input names {name!r} and another port collide as "
                f"{identifier!r} after sanitizing"
            )
        seen[identifier] = net
        input_names[net] = identifier

    output_names: Dict[str, str] = {}
    for name in netlist.outputs:
        identifier = sanitize_identifier(name)
        if identifier in seen:
            raise ConfigurationError(
                f"output name {name!r} collides as {identifier!r}"
            )
        seen[identifier] = -1
        output_names[name] = identifier

    def net_ref(net: int) -> str:
        return input_names.get(net, f"n{net}")

    ports = list(input_names.values()) + list(output_names.values())
    lines: List[str] = [f"module {module} ("]
    declarations: List[str] = []
    for identifier in input_names.values():
        declarations.append(f"  input wire {identifier}")
    for identifier in output_names.values():
        declarations.append(f"  output wire {identifier}")
    lines.append(",\n".join(declarations))
    lines.append(");")

    wire_names = [
        f"n{gate.output}"
        for gate in netlist.gates
        if gate.gate_type is not GateType.INPUT
    ]
    if wire_names:
        lines.append(f"  wire {', '.join(wire_names)};")

    for gate in netlist.gates:
        kind = gate.gate_type
        if kind is GateType.INPUT:
            continue
        target = f"n{gate.output}"
        if kind is GateType.CONST0:
            expression = "1'b0"
        elif kind is GateType.CONST1:
            expression = "1'b1"
        elif kind is GateType.BUF:
            expression = net_ref(gate.inputs[0])
        elif kind is GateType.NOT:
            expression = f"~{net_ref(gate.inputs[0])}"
        elif kind in _BINARY_OPERATORS:
            a, b = (net_ref(n) for n in gate.inputs)
            expression = f"{a} {_BINARY_OPERATORS[kind]} {b}"
        elif kind in _NEGATED_OPERATORS:
            a, b = (net_ref(n) for n in gate.inputs)
            expression = f"~({a} {_NEGATED_OPERATORS[kind]} {b})"
        elif kind is GateType.MUX2:
            sel, a, b = (net_ref(n) for n in gate.inputs)
            expression = f"{sel} ? {b} : {a}"
        else:  # pragma: no cover - exhaustive over GateType
            raise ConfigurationError(f"cannot emit gate type {kind}")
        lines.append(f"  assign {target} = {expression};")

    for name, net in netlist.outputs.items():
        lines.append(f"  assign {output_names[name]} = {net_ref(net)};")
    lines.append("endmodule")
    return "\n".join(lines)


_ASSIGN_RE = re.compile(r"^assign\s+(\w+)\s*=\s*(.+);$")
_PATTERNS: List[Tuple[re.Pattern, GateType]] = [
    (re.compile(r"^1'b0$"), GateType.CONST0),
    (re.compile(r"^1'b1$"), GateType.CONST1),
    (re.compile(r"^~\((\w+)\s*&\s*(\w+)\)$"), GateType.NAND),
    (re.compile(r"^~\((\w+)\s*\|\s*(\w+)\)$"), GateType.NOR),
    (re.compile(r"^~\((\w+)\s*\^\s*(\w+)\)$"), GateType.XNOR),
    (re.compile(r"^~(\w+)$"), GateType.NOT),
    (re.compile(r"^(\w+)\s*&\s*(\w+)$"), GateType.AND),
    (re.compile(r"^(\w+)\s*\|\s*(\w+)$"), GateType.OR),
    (re.compile(r"^(\w+)\s*\^\s*(\w+)$"), GateType.XOR),
    (re.compile(r"^(\w+)\s*\?\s*(\w+)\s*:\s*(\w+)$"), GateType.MUX2),
    (re.compile(r"^(\w+)$"), GateType.BUF),
]


def parse_verilog(text: str) -> Netlist:
    """Parse the emitted subset back into a :class:`Netlist`.

    Assignments may appear in any topological-friendly order produced
    by :func:`emit_verilog`; forward references are rejected (the
    emitter never produces them for combinational netlists).
    """
    inputs: List[str] = []
    outputs: List[str] = []
    assigns: List[Tuple[str, str]] = []
    module_name = "parsed"
    for raw_line in text.splitlines():
        line = raw_line.strip().rstrip(",")
        if not line or line.startswith("//"):
            continue
        if line.startswith("module"):
            parts = line.split()
            if len(parts) >= 2:
                module_name = parts[1].rstrip("(")
            continue
        if line in (");", "endmodule"):
            continue
        if line.startswith("input"):
            names = line.replace("input", "").replace("wire", "")
            inputs.extend(n.strip() for n in names.split(",") if n.strip())
            continue
        if line.startswith("output"):
            names = line.replace("output", "").replace("wire", "")
            outputs.extend(n.strip() for n in names.split(",") if n.strip())
            continue
        if line.startswith("wire"):
            continue  # declarations carry no structure we need
        match = _ASSIGN_RE.match(line)
        if match:
            assigns.append((match.group(1), match.group(2).strip()))
            continue
        raise ConfigurationError(f"unparseable Verilog line: {raw_line!r}")

    netlist = Netlist(name=module_name)
    net_of: Dict[str, int] = {}
    for name in inputs:
        net_of[name] = netlist.add_input(name)

    def resolve(identifier: str) -> int:
        if identifier not in net_of:
            raise ConfigurationError(
                f"identifier {identifier!r} used before assignment"
            )
        return net_of[identifier]

    for target, expression in assigns:
        for pattern, kind in _PATTERNS:
            match = pattern.match(expression)
            if not match:
                continue
            operands = [resolve(g) for g in match.groups()]
            if kind is GateType.MUX2:
                sel, b, a = operands  # emitted as "sel ? b : a"
                net_of[target] = netlist.add_gate(kind, (sel, a, b))
            elif kind in (GateType.CONST0, GateType.CONST1):
                net_of[target] = netlist.add_gate(kind, ())
            else:
                net_of[target] = netlist.add_gate(kind, tuple(operands))
            break
        else:
            raise ConfigurationError(
                f"unsupported expression {expression!r} for {target!r}"
            )

    for name in outputs:
        netlist.mark_output(name, resolve(name))
    return netlist
