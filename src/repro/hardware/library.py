"""Cost and delay parameters in the paper's units.

Section 5 expresses every result in four technology constants: the
cost ``C_SW`` and delay ``D_SW`` of a 2 x 2 switch, and the cost
``C_FN`` and delay ``D_FN`` of an arbiter function node.  The default
model sets all four to 1, which is exactly the normalization Tables 1
and 2 use ("assuming D_SW, D_FN, C_SW and C_FN of the three networks
are comparable").
"""

from __future__ import annotations

import dataclasses

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Technology constants for cost/delay arithmetic.

    ``c_adder`` / ``d_adder`` price the Koppelman ranking-circuit adder
    slices; the paper's comparison treats them as comparable to
    function slices, and so does the default.
    """

    c_sw: float = 1.0
    c_fn: float = 1.0
    c_adder: float = 1.0
    d_sw: float = 1.0
    d_fn: float = 1.0
    d_adder: float = 1.0

    def validate(self) -> "CostModel":
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ValueError(f"{field.name} must be non-negative, got {value}")
        return self


DEFAULT_COST_MODEL = CostModel().validate()
