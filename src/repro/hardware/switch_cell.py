"""The one-bit-slice 2 x 2 switch ``sw(1)`` at gate level.

Two inputs ``a`` (even/upper line) and ``b`` (odd/lower line), one
control ``c``: straight when ``c == 0``, exchange when ``c == 1``.
Realized as two 2-input multiplexers — the unit whose cost the paper
charges as ``C_SW`` and delay as ``D_SW``.
"""

from __future__ import annotations

from typing import Tuple

from .gates import GateType
from .netlist import Netlist

__all__ = ["build_switch_cell", "add_switch_cell", "switch_cell_truth"]


def switch_cell_truth(a: int, b: int, control: int) -> Tuple[int, int]:
    """Reference truth function: returns ``(out_upper, out_lower)``."""
    for v in (a, b, control):
        if v not in (0, 1):
            raise ValueError(f"switch cell inputs must be bits, got {v!r}")
    return (b, a) if control else (a, b)


def add_switch_cell(
    netlist: Netlist, a: int, b: int, control: int, group: str = "sw"
) -> Tuple[int, int]:
    """Instantiate one switch cell; returns ``(out_upper, out_lower)`` nets."""
    out_upper = netlist.add_gate(GateType.MUX2, (control, a, b), group=group)
    out_lower = netlist.add_gate(GateType.MUX2, (control, b, a), group=group)
    return out_upper, out_lower


def build_switch_cell() -> Netlist:
    """A standalone switch-cell netlist with named ports."""
    netlist = Netlist(name="switch_cell")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    control = netlist.add_input("control")
    out_upper, out_lower = add_switch_cell(netlist, a, b, control)
    netlist.mark_output("out_upper", out_upper)
    netlist.mark_output("out_lower", out_lower)
    return netlist
