"""The cluster tier: sharded multi-node routing with failover.

A single gateway node serves one BNB fabric of ``N = 2^m`` lines.
This package scales the *destination space* horizontally instead of
the fabric: ``K`` nodes serve a global space of ``K * N`` lines, each
node owning one contiguous shard, with

* :class:`ShardMap` — the versioned placement document
  (:mod:`repro.cluster.shardmap`),
* :class:`NodeSupervisor` — node lifecycle plus the wire-level health
  loop (:mod:`repro.cluster.supervisor`),
* :class:`ClusterRouter` — reshard-on-death, drain/rejoin rolling
  restarts, map push (:mod:`repro.cluster.router`),
* :class:`ClusterClient` — the shard-routing, failover-riding client
  (:mod:`repro.cluster.client`),
* :func:`run_soak` — the kill-one-node accounting harness behind
  ``repro cluster`` and the soak benchmark (:mod:`repro.cluster.soak`).

``docs/clustering.md`` specifies the delivery contract (at-least-once
across failover, exactly-once per healthy node) and the wire ops
(``drain`` / ``rejoin`` / ``shard_map``) this package drives.
"""

from .client import ClusterClient
from .health import DOWN, DRAINING, HEALTHY, STARTING, NodeHealth
from .router import ClusterRouter
from .shardmap import Shard, ShardMap
from .soak import run_soak
from .supervisor import LocalNode, NodeSpec, NodeSupervisor, SubprocessNode

__all__ = [
    "ClusterClient",
    "ClusterRouter",
    "DOWN",
    "DRAINING",
    "HEALTHY",
    "STARTING",
    "LocalNode",
    "NodeHealth",
    "NodeSpec",
    "NodeSupervisor",
    "Shard",
    "ShardMap",
    "SubprocessNode",
    "run_soak",
]
