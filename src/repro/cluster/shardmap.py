"""Destination-range sharding: which node serves which outputs.

The cluster routes a *global* destination space of ``nodes * n`` lines
by coarse placement only, the way the POPS paper partitions permutation
routing across star groups: global destination ``d`` belongs to shard
``d // n``, the shard maps to a node, and the node's own BNB fabric
self-routes the *local* line ``d % n``.  Nothing about the fine-grained
route crosses the node boundary — the front tier never computes switch
settings, which is why it stays thin.

A :class:`ShardMap` is an immutable value object with a monotonically
increasing ``version``.  Failover and rolling restarts are pure
functions on it:

* :meth:`reassign` moves a node's shards onto the survivors
  (round-robin, so a dead node's range spreads instead of doubling one
  neighbour's load) and bumps the version;
* :meth:`restore` hands a node its *home* shards back on rejoin.

Each shard remembers its ``home`` node forever, so any sequence of
drains, deaths and rejoins converges back to the initial layout.  The
document form (:meth:`to_doc` / :meth:`from_doc`) is plain JSON — it
crosses the wire in the ``shard_map`` op, every node caches the newest
version it has seen, and clients adopt whichever version is highest.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..exceptions import ClusterError, InputError

__all__ = ["Shard", "ShardMap"]


@dataclasses.dataclass(frozen=True)
class Shard:
    """One contiguous destination range and the node serving it."""

    index: int
    base: int
    count: int
    #: The node this range belongs to in a fully healthy cluster.
    home: str
    #: The node currently serving it (== ``home`` unless failed over).
    node: str

    def to_doc(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "base": self.base,
            "count": self.count,
            "home": self.home,
            "node": self.node,
        }


class ShardMap:
    """Immutable global-destination -> node assignment, versioned."""

    def __init__(
        self,
        shards: Sequence[Shard],
        nodes: Mapping[str, Tuple[str, int]],
        node_n: int,
        version: int = 1,
    ) -> None:
        if not shards:
            raise InputError("a shard map needs at least one shard")
        self.shards: Tuple[Shard, ...] = tuple(shards)
        #: node_id -> (host, port) for every node the map has ever
        #: known; a client connects only to nodes that serve shards,
        #: but keeps the addresses so a rejoined node is reachable.
        self.nodes: Dict[str, Tuple[str, int]] = {
            node_id: (host, int(port))
            for node_id, (host, port) in nodes.items()
        }
        self.node_n = node_n
        self.version = version
        for shard in self.shards:
            if shard.node not in self.nodes:
                raise InputError(
                    f"shard {shard.index} assigned to unknown node "
                    f"{shard.node!r}"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def initial(
        cls, nodes: Mapping[str, Tuple[str, int]], node_n: int
    ) -> "ShardMap":
        """One home shard per node, in the mapping's order."""
        if node_n < 1:
            raise InputError(f"node_n must be >= 1, got {node_n}")
        shards = [
            Shard(
                index=index,
                base=index * node_n,
                count=node_n,
                home=node_id,
                node=node_id,
            )
            for index, node_id in enumerate(nodes)
        ]
        return cls(shards, nodes, node_n, version=1)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def n_global(self) -> int:
        return self.node_n * len(self.shards)

    def serving_nodes(self) -> List[str]:
        """Node ids currently serving at least one shard, sorted."""
        return sorted({shard.node for shard in self.shards})

    def shards_of(self, node_id: str) -> List[Shard]:
        return [shard for shard in self.shards if shard.node == node_id]

    def locate(self, dest: int) -> Tuple[str, int]:
        """Global destination -> ``(node_id, local_destination)``."""
        if not 0 <= dest < self.n_global:
            raise InputError(
                f"destination {dest} out of range for the cluster's "
                f"global N={self.n_global}"
            )
        shard = self.shards[dest // self.node_n]
        return shard.node, dest - shard.base

    def locate_batch(
        self, dests: Any
    ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Group a whole destination array by serving node.

        Returns ``{node_id: (positions, local_dests)}`` where
        *positions* index into the input array — one vectorized pass,
        so routing a million-word batch costs a handful of numpy calls,
        not a million ``locate`` lookups.
        """
        array = np.ascontiguousarray(dests, dtype=np.int64)
        if array.ndim != 1:
            raise InputError(
                f"destinations must be one-dimensional, got shape "
                f"{array.shape}"
            )
        if array.size and (
            int(array.min()) < 0 or int(array.max()) >= self.n_global
        ):
            raise InputError(
                f"destinations out of range for the cluster's global "
                f"N={self.n_global}"
            )
        shard_index = array // self.node_n
        owners = np.array(
            [self.shards[index].node for index in range(len(self.shards))]
        )
        locals_ = array - shard_index * self.node_n
        groups: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for node_id in np.unique(owners[shard_index]) if array.size else ():
            positions = np.flatnonzero(owners[shard_index] == node_id)
            groups[str(node_id)] = (positions, locals_[positions])
        return groups

    # ------------------------------------------------------------------
    # Failover and rejoin (pure functions, version bumps)
    # ------------------------------------------------------------------
    def reassign(self, node_id: str) -> "ShardMap":
        """Move every shard off *node_id*, round-robin over survivors."""
        survivors = [
            candidate
            for candidate in self.serving_nodes()
            if candidate != node_id
        ]
        if not survivors:
            raise ClusterError(
                f"cannot reassign {node_id!r}: no surviving node serves "
                f"any shard"
            )
        moved = 0
        shards = []
        for shard in self.shards:
            if shard.node == node_id:
                shards.append(
                    dataclasses.replace(
                        shard, node=survivors[moved % len(survivors)]
                    )
                )
                moved += 1
            else:
                shards.append(shard)
        if not moved:
            return self
        return ShardMap(
            shards, self.nodes, self.node_n, version=self.version + 1
        )

    def restore(self, node_id: str) -> "ShardMap":
        """Hand *node_id* its home shards back (rejoin)."""
        if node_id not in self.nodes:
            raise InputError(f"unknown node {node_id!r}")
        shards = [
            dataclasses.replace(shard, node=node_id)
            if shard.home == node_id
            else shard
            for shard in self.shards
        ]
        if all(a == b for a, b in zip(shards, self.shards)):
            return self
        return ShardMap(
            shards, self.nodes, self.node_n, version=self.version + 1
        )

    # ------------------------------------------------------------------
    # The wire document
    # ------------------------------------------------------------------
    def to_doc(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "node_n": self.node_n,
            "n_global": self.n_global,
            "nodes": {
                node_id: {"host": host, "port": port}
                for node_id, (host, port) in sorted(self.nodes.items())
            },
            "shards": [shard.to_doc() for shard in self.shards],
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "ShardMap":
        try:
            nodes = {
                node_id: (entry["host"], int(entry["port"]))
                for node_id, entry in doc["nodes"].items()
            }
            shards = [
                Shard(
                    index=int(entry["index"]),
                    base=int(entry["base"]),
                    count=int(entry["count"]),
                    home=entry["home"],
                    node=entry["node"],
                )
                for entry in doc["shards"]
            ]
            return cls(
                sorted(shards, key=lambda shard: shard.index),
                nodes,
                int(doc["node_n"]),
                version=int(doc["version"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise InputError(f"malformed shard-map document: {error!r}")

    def __repr__(self) -> str:
        return (
            f"ShardMap(v{self.version}, {len(self.shards)} shard(s) x "
            f"{self.node_n} dests over {len(self.serving_nodes())} node(s))"
        )
