"""The cluster-aware client: shard routing plus transparent failover.

:class:`ClusterClient` speaks only the public wire protocol through
per-node :class:`~repro.client.GatewayClient` connections — it needs
no in-process handle on the router, just one or more *seed* addresses.
On :meth:`connect` it bootstraps the shard map from the first seed
that has one (every node serves its latest copy via the ``shard_map``
op), then routes ``send`` / ``send_batch`` by global destination:
locate the shard, translate to the node-local line, forward.

The failover contract is **at-least-once**:

* ``admission-rejected`` (backpressure or a draining node) sleeps the
  server's ``retry_after_cycles`` hint, refreshes the map — a drain is
  usually accompanied by a pushed reshard — and retries wherever the
  destination now lives.
* ``gateway-disconnected`` / ``gateway-closed`` / connect failures
  drop that node's connection, refresh the map from the surviving
  nodes, and re-send.  A word is only counted delivered when some node
  acknowledged it, so a node dying mid-run costs retries, never words.

Both verbs give up with :class:`~repro.exceptions.ClusterError` after
``max_attempts`` rounds, so a dead *cluster* fails loudly instead of
retrying forever.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..client import GatewayClient
from ..exceptions import (
    ClusterError,
    GatewayRequestError,
    InputError,
)
from .shardmap import ShardMap

__all__ = ["ClusterClient"]

#: Error slugs that mean "this node cannot take the word right now,
#: but the cluster might": re-route after a map refresh.
_FAILOVER_SLUGS = ("gateway-closed", "plane-unavailable")


class ClusterClient:
    """Route words across the cluster by destination shard."""

    def __init__(
        self,
        seeds: Sequence[Tuple[str, int]],
        *,
        binary: bool = True,
        seconds_per_cycle: float = 0.001,
        max_attempts: int = 16,
        retry_floor_seconds: float = 0.05,
    ) -> None:
        if not seeds:
            raise InputError("the cluster client needs at least one seed")
        self.seeds: List[Tuple[str, int]] = [
            (host, int(port)) for host, port in seeds
        ]
        self.binary = binary
        self.seconds_per_cycle = seconds_per_cycle
        self.max_attempts = max_attempts
        #: Minimum sleep before a failover retry — long enough for the
        #: router's health loop to notice a death and push a new map.
        self.retry_floor_seconds = retry_floor_seconds
        self.map: Optional[ShardMap] = None
        self._clients: Dict[str, GatewayClient] = {}
        #: Wire/behaviour counters for tests and the soak harness.
        self.counters: Dict[str, int] = {
            "sends": 0,
            "batches": 0,
            "retries": 0,
            "failovers": 0,
            "map_refreshes": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> "ClusterClient":
        await self.refresh_map(require=True)
        return self

    async def aclose(self) -> None:
        clients, self._clients = self._clients, {}
        for client in clients.values():
            await client.aclose()

    async def __aenter__(self) -> "ClusterClient":
        return await self.connect()

    async def __aexit__(self, *_exc) -> None:
        await self.aclose()

    @property
    def n_global(self) -> int:
        if self.map is None:
            raise ClusterError("the cluster client is not connected")
        return self.map.n_global

    # ------------------------------------------------------------------
    # Map bootstrap / refresh
    # ------------------------------------------------------------------
    def _candidate_addresses(self) -> List[Tuple[str, int]]:
        addresses = list(self.seeds)
        if self.map is not None:
            for address in self.map.nodes.values():
                if address not in addresses:
                    addresses.append(address)
        return addresses

    async def refresh_map(self, require: bool = False) -> bool:
        """Adopt the newest shard map any reachable node will serve.

        Returns True when the map's version advanced.  With *require*
        (the connect path) an unreachable-or-mapless cluster raises
        :class:`ClusterError` instead of returning False.
        """
        self.counters["map_refreshes"] += 1
        best: Optional[Dict[str, Any]] = None
        for host, port in self._candidate_addresses():
            client = GatewayClient(host, port, binary=self.binary)
            try:
                await client.connect()
                response = await client.shard_map()
            except (ConnectionError, OSError, GatewayRequestError):
                continue
            finally:
                await client.aclose()
            doc = response.get("map")
            if doc and (
                best is None or doc["version"] > best["version"]
            ):
                best = doc
        if best is None:
            if require:
                raise ClusterError(
                    "no seed served a shard map — is the cluster router "
                    "running?"
                )
            return False
        if self.map is not None and best["version"] <= self.map.version:
            return False
        old_version = self.map.version if self.map is not None else None
        self.map = ShardMap.from_doc(best)
        # Connections to nodes that no longer serve any shard stay
        # cached — harmless, and a rejoin will want them again.
        return old_version != self.map.version

    async def _client_for(self, node_id: str) -> GatewayClient:
        client = self._clients.get(node_id)
        if client is not None and client.connected:
            return client
        assert self.map is not None
        address = self.map.nodes.get(node_id)
        if address is None:
            raise ClusterError(f"the shard map knows no node {node_id!r}")
        client = GatewayClient(*address, binary=self.binary)
        try:
            await client.connect()
        except BaseException:
            await client.aclose()
            raise
        # Concurrent senders race to reconnect after a failover; only
        # one connection per node may live in the cache, so the losers
        # close theirs and adopt the winner's.
        cached = self._clients.get(node_id)
        if cached is not None and cached is not client:
            if cached.connected:
                await client.aclose()
                return cached
            await cached.aclose()
        self._clients[node_id] = client
        return client

    async def _drop_client(self, node_id: str) -> None:
        client = self._clients.pop(node_id, None)
        if client is not None:
            await client.aclose()

    async def _failover_pause(self, attempt: int) -> None:
        """Sleep, refresh; gives the router time to publish a reshard."""
        await asyncio.sleep(self.retry_floor_seconds * min(attempt, 8))
        await self.refresh_map()

    # ------------------------------------------------------------------
    # send
    # ------------------------------------------------------------------
    async def send(
        self, dest: int, payload: Any = None
    ) -> Dict[str, Any]:
        """Send one word to a *global* destination, riding out failures.

        Returns the delivering node's receipt response, augmented with
        the global ``dest`` and the ``node_id`` that served it (the
        ``receipt.dest`` inside remains node-local).
        """
        if self.map is None:
            raise ClusterError("the cluster client is not connected")
        self.counters["sends"] += 1
        last_error: Optional[Exception] = None
        for attempt in range(1, self.max_attempts + 1):
            node_id, local = self.map.locate(dest)
            try:
                client = await self._client_for(node_id)
                response = await client.send(local, payload)
            except GatewayRequestError as error:
                last_error = error
                if error.slug == "admission-rejected":
                    self.counters["retries"] += 1
                    hint = max(1, error.retry_after_cycles)
                    await asyncio.sleep(
                        min(1.0, hint * self.seconds_per_cycle)
                    )
                    await self.refresh_map()
                    continue
                if error.slug in _FAILOVER_SLUGS:
                    self.counters["failovers"] += 1
                    await self._drop_client(node_id)
                    await self._failover_pause(attempt)
                    continue
                raise
            except (ConnectionError, OSError) as error:
                # Includes GatewayDisconnectedError: the node died with
                # our request pending — we cannot know whether the word
                # landed, so re-send (at-least-once).
                last_error = error
                self.counters["failovers"] += 1
                await self._drop_client(node_id)
                await self._failover_pause(attempt)
                continue
            # Preserve the node's own echo (the *local* line it
            # delivered to) before stamping the global view on top —
            # the soak harness cross-checks echo against expectation.
            response["local_dest"] = response.get("dest")
            response["dest"] = dest
            response["node_id"] = node_id
            return response
        raise ClusterError(
            f"word for destination {dest} undeliverable after "
            f"{self.max_attempts} attempts: {last_error!r}"
        )

    # ------------------------------------------------------------------
    # send_batch
    # ------------------------------------------------------------------
    async def send_batch(
        self,
        dests: Any,
        payloads: Optional[Sequence[Any]] = None,
        *,
        retry: int = 8,
    ) -> Dict[str, Any]:
        """Send a batch of global destinations; every word lands.

        Splits the batch by serving node (one vectorized pass), runs
        the per-node ``send_batch`` requests concurrently, then
        re-pends any word whose node rejected it or died, refreshes
        the map, and goes again — up to ``max_attempts`` rounds.
        *retry* is forwarded as the per-node server-side re-admission
        budget.  Returns per-word ``statuses`` / ``latencies`` (global
        order) plus per-node delivery counts and the round count.
        """
        if self.map is None:
            raise ClusterError("the cluster client is not connected")
        array = np.ascontiguousarray(dests, dtype=np.int64)
        if array.ndim != 1:
            raise InputError(
                f"dests must be one-dimensional, got shape {array.shape}"
            )
        self.counters["batches"] += 1
        statuses = np.zeros(array.size, dtype=np.int64)
        latencies = np.full(array.size, -1, dtype=np.int64)
        node_counts: Dict[str, int] = {}
        pending = np.arange(array.size, dtype=np.int64)
        rounds = 0
        last_error: Optional[Exception] = None
        while pending.size:
            rounds += 1
            if rounds > self.max_attempts:
                raise ClusterError(
                    f"{pending.size} of {array.size} words undeliverable "
                    f"after {self.max_attempts} rounds: {last_error!r}"
                )
            groups = self.map.locate_batch(array[pending])

            async def _one_node(node_id, positions, local_dests):
                try:
                    client = await self._client_for(node_id)
                    node_payloads = (
                        [payloads[int(k)] for k in pending[positions]]
                        if payloads is not None
                        else None
                    )
                    response = await client.send_batch(
                        local_dests, node_payloads, retry=retry
                    )
                except (
                    ConnectionError,
                    OSError,
                    GatewayRequestError,
                ) as error:
                    return node_id, positions, None, error
                return node_id, positions, response, None

            outcomes = await asyncio.gather(
                *(
                    _one_node(node_id, positions, local_dests)
                    for node_id, (positions, local_dests) in groups.items()
                )
            )
            still_pending: List[np.ndarray] = []
            max_hint = 0
            for node_id, positions, response, error in outcomes:
                indices = pending[positions]
                if response is None:
                    last_error = error
                    if isinstance(error, GatewayRequestError):
                        if error.slug == "admission-rejected":
                            self.counters["retries"] += 1
                            max_hint = max(
                                max_hint, error.retry_after_cycles
                            )
                        elif error.slug not in _FAILOVER_SLUGS:
                            raise error
                        else:
                            self.counters["failovers"] += 1
                            await self._drop_client(node_id)
                    else:
                        self.counters["failovers"] += 1
                        await self._drop_client(node_id)
                    still_pending.append(indices)
                    continue
                delivered = response["statuses"] == 1
                statuses[indices[delivered]] = 1
                latencies[indices[delivered]] = response["latencies"][
                    delivered
                ]
                node_counts[node_id] = node_counts.get(node_id, 0) + int(
                    delivered.sum()
                )
                if not delivered.all():
                    self.counters["retries"] += 1
                    hints = response["retry_after"][~delivered]
                    if hints.size:
                        max_hint = max(max_hint, int(hints.max()))
                    still_pending.append(indices[~delivered])
            if still_pending:
                pending = np.concatenate(still_pending)
                pause = self.retry_floor_seconds
                if max_hint:
                    pause = max(
                        pause,
                        min(1.0, max_hint * self.seconds_per_cycle),
                    )
                await asyncio.sleep(pause)
                await self.refresh_map()
            else:
                pending = pending[:0]
        return {
            "count": int(array.size),
            "delivered": int(statuses.sum()),
            "statuses": statuses,
            "latencies": latencies,
            "rounds": rounds,
            "nodes": node_counts,
        }
