"""The cluster front tier: shard placement plus failure response.

:class:`ClusterRouter` ties the pieces together: it owns the
authoritative :class:`~repro.cluster.shardmap.ShardMap`, a
:class:`~repro.cluster.supervisor.NodeSupervisor` with the router's
:meth:`_node_down` wired as the down-callback, and the push path that
installs every new map version on every reachable node via the
``shard_map`` op — so any surviving node can hand the newest map to a
:class:`~repro.cluster.client.ClusterClient` that lost its footing.

The three reconfiguration verbs:

* **node death** (health streak or :meth:`kill`): reassign the dead
  node's shards round-robin over the survivors, push the bumped map.
  In-flight words to the dead node fail with ``gateway-disconnected``;
  the cluster client refreshes the map and re-sends — at-least-once
  delivery, never silent loss.
* :meth:`drain_node` (rolling restart, step 1): move the node's shards
  to the survivors *first*, push, then issue the ``drain`` op — new
  traffic is already routed elsewhere by the time the node starts
  refusing admission, and its backlog serves out normally.
* :meth:`rejoin_node` (rolling restart, step 2): ``rejoin`` op, then
  restore the node's home shards and push.  Because every shard
  remembers its home, any drain/rejoin sequence converges back to the
  initial layout.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from ..exceptions import ClusterError, InputError
from .shardmap import ShardMap
from .supervisor import NodeSupervisor

__all__ = ["ClusterRouter"]


class ClusterRouter:
    """Owns the shard map; reacts to node death, drain and rejoin."""

    def __init__(
        self,
        supervisor: NodeSupervisor,
        *,
        health_loop: bool = True,
    ) -> None:
        self.supervisor = supervisor
        if supervisor.on_node_down is not None:
            raise InputError(
                "the supervisor already has an on_node_down callback"
            )
        supervisor.on_node_down = self._node_down
        self.map: Optional[ShardMap] = None
        self._health_loop = health_loop
        #: Reconfiguration history, oldest first; each entry records the
        #: verb, the node, and the map version it produced.
        self.events: List[Dict[str, Any]] = []
        self._reconfigure_lock = asyncio.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ClusterRouter":
        addresses = await self.supervisor.start_all()
        node_ns = {
            node.spec.n for node in self.supervisor.nodes.values()
        }
        if len(node_ns) != 1:
            raise InputError(
                f"every node must serve the same local N, got {sorted(node_ns)}"
            )
        self.map = ShardMap.initial(addresses, node_ns.pop())
        await self.push_map()
        self._record("start", None)
        if self._health_loop:
            self.supervisor.start_health_loop()
        return self

    async def stop(self) -> None:
        await self.supervisor.stop_all()

    async def __aenter__(self) -> "ClusterRouter":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Map distribution
    # ------------------------------------------------------------------
    async def push_map(self) -> int:
        """Install the current map on every reachable node.

        Returns how many nodes installed it.  A node that cannot be
        reached is skipped, not an error — if it is dead the health
        loop will notice, and if it comes back it bootstraps from a
        peer's copy anyway.
        """
        assert self.map is not None
        doc = self.map.to_doc()
        installed = 0
        for node_id in list(self.supervisor.addresses):
            if not self.supervisor.health[node_id].alive and (
                node_id not in self.map.serving_nodes()
            ):
                continue
            try:
                await self.supervisor.wire(node_id, "shard_map", map=doc)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                continue
            installed += 1
        return installed

    # ------------------------------------------------------------------
    # Reconfiguration verbs
    # ------------------------------------------------------------------
    async def _node_down(self, node_id: str) -> None:
        """Supervisor callback: a node died; move its shards and push."""
        async with self._reconfigure_lock:
            assert self.map is not None
            if not self.map.shards_of(node_id):
                return  # already resharded (e.g. killed while draining)
            self.map = self.map.reassign(node_id)
            self._record("node-down", node_id)
        await self.push_map()

    async def drain_node(self, node_id: str) -> Dict[str, Any]:
        """Rolling-restart step 1: route around the node, then drain it."""
        async with self._reconfigure_lock:
            assert self.map is not None
            if node_id not in self.map.nodes:
                raise InputError(f"unknown node {node_id!r}")
            if self.map.shards_of(node_id):
                self.map = self.map.reassign(node_id)
            self._record("drain", node_id)
        await self.push_map()
        response = await self.supervisor.drain(node_id)
        return response

    async def rejoin_node(self, node_id: str) -> Dict[str, Any]:
        """Rolling-restart step 2: re-admit, restore home shards, push."""
        response = await self.supervisor.rejoin(node_id)
        async with self._reconfigure_lock:
            assert self.map is not None
            self.map = self.map.restore(node_id)
            self._record("rejoin", node_id)
        await self.push_map()
        return response

    async def kill_node(self, node_id: str) -> None:
        """Crash a node (fault drill); resharding runs via the callback."""
        await self.supervisor.kill(node_id)

    async def restart_node(self, node_id: str) -> None:
        """Bring a killed node back and fold it into the map again."""
        await self.supervisor.restart(node_id)
        self.supervisor.health[node_id].mark_rejoined()
        async with self._reconfigure_lock:
            assert self.map is not None
            self.map = self.map.restore(node_id)
            self._record("restart", node_id)
        await self.push_map()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _record(self, event: str, node_id: Optional[str]) -> None:
        assert self.map is not None
        self.events.append(
            {
                "event": event,
                "node": node_id,
                "map_version": self.map.version,
            }
        )

    def describe(self) -> Dict[str, Any]:
        """One JSON-safe snapshot of the whole cluster's state."""
        if self.map is None:
            raise ClusterError("the router has not started")
        return {
            "map": self.map.to_doc(),
            "nodes": self.supervisor.snapshot(),
            "events": list(self.events),
        }
