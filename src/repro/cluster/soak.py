"""The cluster soak/smoke harness: drive, kill, verify.

One async entry point, :func:`run_soak`, shared by the
``repro cluster --smoke`` CLI and ``benchmarks/bench_cluster_soak.py``:
boot an N-node cluster of in-process gateway nodes, pump a word budget
through a :class:`~repro.cluster.client.ClusterClient` in concurrent
bursts, optionally **kill one node mid-run**, and account for every
word.

The two numbers that matter come out exact, not sampled:

* **delivery** — a burst only completes when every one of its words
  was acknowledged by some node (the cluster client retries and fails
  over until then), so ``delivered == requested`` or the run raises.
* **misdeliveries** — interleaved echo probes: single ``send``s whose
  receipt must name the node and *local* line the shard map predicted
  (on the map version the probe was routed with).  The fabric's own
  sampled boundary verification backs this up underneath.

The harness returns a JSON-safe dict (the ``cluster_soak.json``
artifact schema in ``benchmarks/check_artifacts.py`` pins its shape).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional

import numpy as np

from ..exceptions import ClusterError
from .client import ClusterClient
from .router import ClusterRouter
from .supervisor import LocalNode, NodeSpec, NodeSupervisor

__all__ = ["run_soak"]


async def run_soak(
    *,
    nodes: int = 4,
    m: int = 6,
    words: int = 1_000_000,
    kill: bool = True,
    kill_at: float = 0.4,
    burst: int = 8192,
    in_flight: int = 4,
    engine: str = "batch",
    batch_window: int = 64,
    queue_capacity: int = 256,
    planes: int = 1,
    seed: int = 0,
    verify_every: int = 8,
    poll_interval: float = 0.05,
) -> Dict[str, Any]:
    """Soak a local cluster; returns the accounting dict.

    Raises :class:`~repro.exceptions.ClusterError` if any word could
    not be delivered — the caller never needs to inspect a partial
    result to learn the run failed.
    """
    if nodes < 2:
        raise ClusterError("a soak needs at least 2 nodes (one may die)")
    if kill:
        # The kill must land with traffic still to come, or the run
        # would prove nothing about resharded delivery; cap the burst
        # so there are always several bursts after the threshold.
        burst = min(burst, max(1, words // 6))
    specs = [
        NodeSpec(
            node_id=f"node-{index}",
            m=m,
            engine=engine,
            batch_window=batch_window,
            queue_capacity=queue_capacity,
            planes=planes,
        )
        for index in range(nodes)
    ]
    supervisor = NodeSupervisor(
        [LocalNode(spec) for spec in specs],
        poll_interval=poll_interval,
        poll_timeout=2.0,
        failure_threshold=2,
    )
    router = ClusterRouter(supervisor)
    victim = f"node-{nodes - 1}" if kill else None
    kill_threshold = int(words * kill_at)

    totals = {
        "delivered": 0,
        "bursts": 0,
        "verified_sends": 0,
        "misdeliveries": 0,
        "max_rounds": 0,
    }
    kill_record: Dict[str, Any] = {"killed": False, "at_words": None}
    progress_lock = asyncio.Lock()

    async with router:
        assert router.map is not None
        n_global = router.map.n_global
        addresses = list(supervisor.addresses.values())
        burst_count = -(-words // burst)  # ceil

        async with ClusterClient(
            addresses,
            max_attempts=64,
            retry_floor_seconds=poll_interval,
        ) as client:

            async def _verify_echo(rng: np.random.Generator) -> None:
                """One echo probe: the receipt must match the map."""
                dest = int(rng.integers(0, n_global))
                assert client.map is not None
                expected_node, expected_local = client.map.locate(dest)
                response = await client.send(dest, payload=dest)
                totals["verified_sends"] += 1
                served_node = response["node_id"]
                local_echo = response["local_dest"]
                # The probe may have been re-routed mid-flight by a
                # fresher map than the one we predicted with; judge it
                # against the map it was actually served under.
                assert client.map is not None
                actual_node, actual_local = client.map.locate(dest)
                ok = (
                    local_echo == expected_local
                    and served_node == expected_node
                ) or (
                    local_echo == actual_local
                    and served_node == actual_node
                )
                if not ok:
                    totals["misdeliveries"] += 1

            next_burst = iter(range(burst_count))

            async def _worker(worker_index: int) -> None:
                rng = np.random.default_rng(seed * 7919 + worker_index)
                while True:
                    async with progress_lock:
                        index = next(next_burst, None)
                    if index is None:
                        return
                    count = min(burst, words - index * burst)
                    dests = np.random.default_rng(seed + index).integers(
                        0, n_global, count, dtype=np.int64
                    )
                    result = await client.send_batch(dests)
                    async with progress_lock:
                        totals["delivered"] += result["delivered"]
                        totals["bursts"] += 1
                        totals["max_rounds"] = max(
                            totals["max_rounds"], result["rounds"]
                        )
                        due_kill = (
                            victim is not None
                            and not kill_record["killed"]
                            and totals["delivered"] >= kill_threshold
                        )
                        if due_kill:
                            kill_record["killed"] = True
                            kill_record["at_words"] = totals["delivered"]
                    if due_kill:
                        await router.kill_node(victim)
                    if index % verify_every == 0:
                        await _verify_echo(rng)

            started = time.perf_counter()
            await asyncio.gather(
                *(_worker(index) for index in range(in_flight))
            )
            elapsed = time.perf_counter() - started

            # The post-kill state must be coherent: every shard served
            # by a live survivor, on a bumped map version.
            final_map = router.map
            assert final_map is not None
            if victim is not None and kill_record["killed"]:
                if victim in final_map.serving_nodes():
                    raise ClusterError(
                        f"{victim} still owns shards after its death"
                    )
                if supervisor.health[victim].state != "down":
                    raise ClusterError(
                        f"{victim} was killed but health says "
                        f"{supervisor.health[victim].state!r}"
                    )

            report: Dict[str, Any] = {
                "nodes": nodes,
                "node_n": 1 << m,
                "n_global": n_global,
                "engine": engine,
                "requested_words": words,
                "delivered_words": totals["delivered"],
                "delivery_rate": (
                    totals["delivered"] / words if words else 1.0
                ),
                "bursts": totals["bursts"],
                "burst_words": burst,
                "in_flight": in_flight,
                "verified_sends": totals["verified_sends"],
                "misdeliveries": totals["misdeliveries"],
                "max_batch_rounds": totals["max_rounds"],
                "killed_node": victim if kill_record["killed"] else None,
                "killed_at_words": kill_record["at_words"],
                "map_version": final_map.version,
                "map_events": list(router.events),
                "client_counters": dict(client.counters),
                "node_states": {
                    entry["node_id"]: entry["state"]
                    for entry in supervisor.snapshot()
                },
                "elapsed_seconds": round(elapsed, 3),
                "words_per_second": round(
                    totals["delivered"] / elapsed if elapsed else 0.0, 1
                ),
            }
            if totals["delivered"] < words:
                raise ClusterError(
                    f"soak lost words: {totals['delivered']} of {words} "
                    f"delivered"
                )
            if totals["misdeliveries"]:
                raise ClusterError(
                    f"soak observed {totals['misdeliveries']} "
                    f"misdelivered echo probe(s)"
                )
            return report


def render_report(report: Dict[str, Any]) -> List[str]:
    """The soak report as the CLI's plain-text lines."""
    lines = [
        f"cluster  : {report['nodes']} node(s) x N={report['node_n']} "
        f"= global N={report['n_global']} (engine {report['engine']})",
        f"traffic  : {report['delivered_words']}/{report['requested_words']} "
        f"words delivered in {report['bursts']} burst(s) "
        f"({report['words_per_second']:.0f} words/s)",
        f"checks   : {report['verified_sends']} echo probe(s), "
        f"{report['misdeliveries']} misdelivered",
    ]
    if report["killed_node"] is not None:
        lines.append(
            f"failover : killed {report['killed_node']} after "
            f"{report['killed_at_words']} words; map now "
            f"v{report['map_version']}"
        )
    else:
        lines.append(f"failover : none (map v{report['map_version']})")
    states = ", ".join(
        f"{node}={state}" for node, state in sorted(
            report["node_states"].items()
        )
    )
    lines.append(f"nodes    : {states}")
    return lines
