"""Per-node health state, driven by ``stats`` polls.

The supervisor's health loop calls :meth:`NodeHealth.mark_ok` /
:meth:`NodeHealth.mark_failure` after every poll; the state machine
here turns those edges into the events the router acts on:

``STARTING -> HEALTHY`` on the first successful poll;
``HEALTHY -> DOWN`` after ``failure_threshold`` *consecutive* failures
(one dropped probe is noise, a streak is a dead node);
``HEALTHY <-> DRAINING`` is commanded by the operator, not observed —
a draining node still answers polls, it just refuses admission.

A node marked DOWN stays DOWN until the supervisor restarts it or an
operator rejoins it; health never flaps a node back up on its own,
because the router already moved its shards and a silent un-reshard
would misroute in-flight traffic.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

__all__ = [
    "DOWN",
    "DRAINING",
    "HEALTHY",
    "STARTING",
    "NodeHealth",
]

STARTING = "starting"
HEALTHY = "healthy"
DRAINING = "draining"
DOWN = "down"


@dataclasses.dataclass
class NodeHealth:
    """Observed health of one node, as the poll loop sees it."""

    node_id: str
    #: Consecutive failed polls that flip a live node to DOWN.
    failure_threshold: int = 3
    state: str = STARTING
    consecutive_failures: int = 0
    polls: int = 0
    failures: int = 0
    #: The last ``stats`` body the node answered with (diagnostics).
    last_stats: Optional[Dict[str, Any]] = None
    last_error: str = ""

    def mark_ok(self, stats: Optional[Dict[str, Any]] = None) -> bool:
        """Record a successful poll; True when the node *became* live."""
        self.polls += 1
        self.consecutive_failures = 0
        self.last_error = ""
        if stats is not None:
            self.last_stats = stats
        became_live = self.state == STARTING
        if self.state in (STARTING,):
            self.state = HEALTHY
        if self.state == DRAINING and stats is not None:
            # An operator may have rejoined the node behind our back
            # (e.g. over the wire); trust the node's own word.
            if not stats.get("draining", False):
                self.state = HEALTHY
        return became_live

    def mark_failure(self, error: str = "") -> bool:
        """Record a failed poll; True when this one flips the node DOWN."""
        self.polls += 1
        self.failures += 1
        self.consecutive_failures += 1
        self.last_error = error
        if self.state == DOWN:
            return False
        if self.consecutive_failures >= self.failure_threshold:
            self.state = DOWN
            return True
        return False

    def mark_draining(self) -> None:
        if self.state != DOWN:
            self.state = DRAINING

    def mark_rejoined(self) -> None:
        self.state = HEALTHY
        self.consecutive_failures = 0

    def mark_down(self, error: str = "") -> bool:
        """Force DOWN (e.g. the supervisor watched the process die)."""
        flipped = self.state != DOWN
        self.state = DOWN
        if error:
            self.last_error = error
        return flipped

    @property
    def alive(self) -> bool:
        return self.state in (HEALTHY, DRAINING)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "node_id": self.node_id,
            "state": self.state,
            "polls": self.polls,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "uptime_seconds": (
                (self.last_stats or {}).get("uptime_seconds")
            ),
        }
