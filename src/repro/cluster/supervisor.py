"""Node lifecycle and health polling for the cluster tier.

:class:`NodeSupervisor` owns a set of gateway nodes — in-process
(:class:`LocalNode`: an :class:`~repro.server.gateway.AsyncGateway`
plus :class:`~repro.server.protocol.GatewayServer` on a loopback port)
or spawned (:class:`SubprocessNode`: ``python -m repro serve`` with a
``--node-id``, its port parsed from the serving banner).  Either way
the supervisor only ever talks to a node *over the wire*, so the
health loop exercises exactly the path a real deployment would:
short-lived :class:`~repro.client.GatewayClient` connections issuing
``stats`` / ``drain`` / ``rejoin`` / ``shard_map`` ops.

The health loop polls every node on an interval and feeds
:class:`~repro.cluster.health.NodeHealth`; when a node's consecutive
failures cross the threshold (or :meth:`NodeSupervisor.kill` crashes
it deliberately), the supervisor fires ``on_node_down`` — the
:class:`~repro.cluster.router.ClusterRouter` hooks this to reshard and
push the new map to the survivors.
"""

from __future__ import annotations

import asyncio
import dataclasses
import re
import sys
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from ..client import GatewayClient
from ..exceptions import ClusterError, InputError
from .health import DOWN, NodeHealth

__all__ = ["LocalNode", "NodeSpec", "NodeSupervisor", "SubprocessNode"]

#: ``repro serve`` banner, e.g. ``serving N=64 on 127.0.0.1:40735 (...)``.
_BANNER = re.compile(r"serving N=\d+ on (\S+):(\d+)")


@dataclasses.dataclass
class NodeSpec:
    """How to build one gateway node of the cluster."""

    node_id: str
    m: int
    host: str = "127.0.0.1"
    port: int = 0  # 0 picks a free port
    planes: int = 1
    queue_capacity: int = 64
    engine: str = "batch"
    batch_window: int = 32

    @property
    def n(self) -> int:
        return 1 << self.m


class LocalNode:
    """One in-process gateway node: fabric, gateway, TCP server.

    The node still serves real sockets — only the *process* boundary is
    elided, which keeps a multi-node cluster cheap enough to soak in CI
    while exercising the same wire path as a spawned node.
    """

    def __init__(self, spec: NodeSpec) -> None:
        self.spec = spec
        self.gateway: Optional[Any] = None
        self.server: Optional[Any] = None

    @property
    def running(self) -> bool:
        return self.server is not None

    async def start(self) -> Tuple[str, int]:
        from ..server import AsyncGateway, GatewayConfig, GatewayServer

        if self.running:
            raise InputError(f"node {self.spec.node_id!r} already running")
        config = GatewayConfig(
            m=self.spec.m,
            planes=self.spec.planes,
            queue_capacity=self.spec.queue_capacity,
            engine=self.spec.engine,
            batch_window=self.spec.batch_window,
            node_id=self.spec.node_id,
        )
        self.gateway = await AsyncGateway(config).start()
        self.server = await GatewayServer(
            self.gateway, host=self.spec.host, port=self.spec.port
        ).start()
        return self.spec.host, self.server.port

    async def stop(self) -> None:
        """Graceful shutdown: serve out the backlog, then close."""
        server, self.server = self.server, None
        gateway, self.gateway = self.gateway, None
        if server is not None:
            await server.stop()
        if gateway is not None:
            await gateway.stop(drain=True)

    async def kill(self) -> None:
        """Crash the node: drop the socket and abandon the backlog."""
        server, self.server = self.server, None
        gateway, self.gateway = self.gateway, None
        if server is not None:
            await server.stop()
        if gateway is not None:
            await gateway.stop(drain=False)


class SubprocessNode:
    """One spawned ``python -m repro serve`` gateway process."""

    def __init__(self, spec: NodeSpec) -> None:
        self.spec = spec
        self.process: Optional[asyncio.subprocess.Process] = None

    @property
    def running(self) -> bool:
        return self.process is not None and self.process.returncode is None

    def _argv(self) -> List[str]:
        spec = self.spec
        return [
            sys.executable,
            "-m",
            "repro",
            "serve",
            str(spec.n),
            "--host",
            spec.host,
            "--port",
            str(spec.port),
            "--planes",
            str(spec.planes),
            "--capacity",
            str(spec.queue_capacity),
            "--engine",
            spec.engine,
            "--node-id",
            spec.node_id,
        ]

    async def start(self) -> Tuple[str, int]:
        if self.running:
            raise InputError(f"node {self.spec.node_id!r} already running")
        self.process = await asyncio.create_subprocess_exec(
            *self._argv(),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
        )
        assert self.process.stdout is not None
        # The serve banner is printed (and flushed) once the socket is
        # bound; parse the actual port from it so port 0 works.
        while True:
            line = await self.process.stdout.readline()
            if not line:
                code = await self.process.wait()
                raise ClusterError(
                    f"node {self.spec.node_id!r} exited (code {code}) "
                    f"before binding its socket"
                )
            match = _BANNER.search(line.decode("utf-8", "replace"))
            if match:
                return match.group(1), int(match.group(2))

    async def stop(self) -> None:
        process, self.process = self.process, None
        if process is not None and process.returncode is None:
            process.terminate()
            try:
                await asyncio.wait_for(process.wait(), timeout=10)
            except asyncio.TimeoutError:
                process.kill()
                await process.wait()

    async def kill(self) -> None:
        process, self.process = self.process, None
        if process is not None and process.returncode is None:
            process.kill()
            await process.wait()


class NodeSupervisor:
    """Launch, watch, drain and crash the cluster's nodes.

    ``on_node_down`` is an async callback ``(node_id) -> None`` fired
    exactly once per transition into DOWN — from the health loop when a
    failure streak crosses the threshold, or immediately from
    :meth:`kill`.  The router uses it to reshard.
    """

    def __init__(
        self,
        nodes: List[Any],
        *,
        poll_interval: float = 0.25,
        poll_timeout: float = 2.0,
        failure_threshold: int = 3,
        on_node_down: Optional[
            Callable[[str], Awaitable[None]]
        ] = None,
    ) -> None:
        self.nodes: Dict[str, Any] = {
            node.spec.node_id: node for node in nodes
        }
        if len(self.nodes) != len(nodes):
            raise InputError("node ids must be unique")
        self.addresses: Dict[str, Tuple[str, int]] = {}
        self.health: Dict[str, NodeHealth] = {
            node_id: NodeHealth(node_id, failure_threshold=failure_threshold)
            for node_id in self.nodes
        }
        self.poll_interval = poll_interval
        self.poll_timeout = poll_timeout
        self.on_node_down = on_node_down
        self._health_task: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start_all(self) -> Dict[str, Tuple[str, int]]:
        """Start every node; returns ``{node_id: (host, port)}``."""
        for node_id, node in self.nodes.items():
            self.addresses[node_id] = await node.start()
        return dict(self.addresses)

    async def stop_all(self) -> None:
        await self.stop_health_loop()
        for node in self.nodes.values():
            await node.stop()

    async def __aenter__(self) -> "NodeSupervisor":
        await self.start_all()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop_all()

    # ------------------------------------------------------------------
    # The wire: every control action is a real client op
    # ------------------------------------------------------------------
    async def wire(self, node_id: str, op: str, **fields: Any) -> Dict[str, Any]:
        """One op against one node over a short-lived connection.

        The client object is created before the first await so the
        ``finally`` always owns it — a health-loop cancellation landing
        mid-connect must not orphan the reader task.
        """
        host, port = self.addresses[node_id]
        client = GatewayClient(host, port)
        try:
            await asyncio.wait_for(
                client.connect(), timeout=self.poll_timeout
            )
            return await asyncio.wait_for(
                client.request(op, **fields), timeout=self.poll_timeout
            )
        finally:
            await client.aclose()

    async def poll_once(self, node_id: str) -> NodeHealth:
        """One health probe: ``stats`` over the wire, state updated."""
        health = self.health[node_id]
        try:
            response = await self.wire(node_id, "stats")
        except (
            ConnectionError,
            OSError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
        ) as error:
            flipped = health.mark_failure(str(error) or type(error).__name__)
            if flipped:
                await self._fire_down(node_id)
        else:
            health.mark_ok(response.get("stats", {}))
        return health

    async def poll_all(self) -> Dict[str, str]:
        """Probe every non-DOWN node; returns ``{node_id: state}``."""
        for node_id in list(self.nodes):
            if self.health[node_id].state != DOWN:
                await self.poll_once(node_id)
        return {
            node_id: health.state for node_id, health in self.health.items()
        }

    def start_health_loop(self) -> asyncio.Task:
        if self._health_task is not None:
            raise InputError("health loop already running")
        self._stopped.clear()
        self._health_task = asyncio.ensure_future(self._run_health_loop())
        return self._health_task

    async def stop_health_loop(self) -> None:
        task, self._health_task = self._health_task, None
        self._stopped.set()
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def _run_health_loop(self) -> None:
        while not self._stopped.is_set():
            await self.poll_all()
            try:
                await asyncio.wait_for(
                    self._stopped.wait(), timeout=self.poll_interval
                )
            except asyncio.TimeoutError:
                pass

    async def _fire_down(self, node_id: str) -> None:
        if self.on_node_down is not None:
            await self.on_node_down(node_id)

    # ------------------------------------------------------------------
    # Operator verbs
    # ------------------------------------------------------------------
    async def drain(self, node_id: str) -> Dict[str, Any]:
        response = await self.wire(node_id, "drain")
        self.health[node_id].mark_draining()
        return response

    async def rejoin(self, node_id: str) -> Dict[str, Any]:
        response = await self.wire(node_id, "rejoin")
        self.health[node_id].mark_rejoined()
        return response

    async def kill(self, node_id: str) -> None:
        """Crash a node mid-run (fault drill); fires ``on_node_down``."""
        node = self.nodes[node_id]
        await node.kill()
        if self.health[node_id].mark_down("killed by supervisor"):
            await self._fire_down(node_id)

    async def restart(self, node_id: str) -> Tuple[str, int]:
        """Start a previously stopped/killed node again (same spec)."""
        node = self.nodes[node_id]
        if node.running:
            raise InputError(f"node {node_id!r} is already running")
        self.addresses[node_id] = await node.start()
        health = self.health[node_id]
        health.consecutive_failures = 0
        health.state = DOWN  # stays DOWN until the router rejoins it
        return self.addresses[node_id]

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            self.health[node_id].snapshot() for node_id in sorted(self.nodes)
        ]
