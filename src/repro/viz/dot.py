"""Graphviz DOT export for networks and arbiter trees.

Produces plain DOT text (no graphviz dependency): feed it to ``dot``
or any online renderer to draw Figs. 1-4-style diagrams of actual
constructed networks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.arbiter import Arbiter
from ..topology.multistage import MultistageNetwork

__all__ = ["multistage_to_dot", "arbiter_to_dot"]


def _quote(label: str) -> str:
    return '"' + label.replace('"', r"\"") + '"'


def multistage_to_dot(
    network: MultistageNetwork, title: Optional[str] = None
) -> str:
    """Render a multistage network's wiring as a left-to-right DOT graph."""
    lines: List[str] = [
        "digraph multistage {",
        "  rankdir=LR;",
        "  node [shape=box, fontsize=10];",
    ]
    if title:
        lines.append(f"  label={_quote(title)};")
    n = network.n
    for j in range(n):
        lines.append(f'  in{j} [shape=plaintext, label="in {j}"];')
        lines.append(f'  out{j} [shape=plaintext, label="out {j}"];')
    for stage in range(network.stage_count):
        with_rank = ", ".join(f"s{stage}_{t}" for t in range(n // 2))
        for t in range(n // 2):
            lines.append(f'  s{stage}_{t} [label="sw {stage}.{t}"];')
        lines.append(f"  {{ rank=same; {with_rank} }}")

    def switch_node(stage: int, line: int) -> str:
        return f"s{stage}_{line // 2}"

    for j in range(n):
        first = network.input_wiring[j] if network.input_wiring else j
        lines.append(f"  in{j} -> {switch_node(0, first)};")
    for stage in range(network.stage_count - 1):
        wiring = network.wirings[stage]
        for j in range(n):
            lines.append(
                f"  {switch_node(stage, j)} -> "
                f"{switch_node(stage + 1, wiring[j])};"
            )
    last = network.stage_count - 1
    for j in range(n):
        target = network.output_wiring[j] if network.output_wiring else j
        lines.append(f"  {switch_node(last, j)} -> out{target};")
    lines.append("}")
    return "\n".join(lines)


def arbiter_to_dot(
    p: int, bits: Optional[Sequence[int]] = None
) -> str:
    """Render the ``A(p)`` tree; with *bits*, annotate live signals."""
    arbiter = Arbiter(p)
    trace = arbiter.trace(list(bits)) if bits is not None else None
    lines: List[str] = [
        "digraph arbiter {",
        "  rankdir=BT;",
        "  node [shape=circle, fontsize=10];",
    ]
    input_count = 1 << p
    for j in range(input_count):
        value = f"\\n={bits[j]}" if bits is not None else ""
        lines.append(
            f'  x{j} [shape=plaintext, label="s({j}){value}"];'
        )
    level_sizes = [input_count >> (level + 1) for level in range(p)]
    for level, size in enumerate(level_sizes):
        for index in range(size):
            annotation = ""
            if trace is not None:
                node = trace.nodes[level][index]
                annotation = f"\\nzu={node.z_up} zd={node.z_down}"
            lines.append(
                f'  n{level}_{index} [label="FN{annotation}"];'
            )
    # Leaves to level-0 nodes.
    for index in range(level_sizes[0]):
        lines.append(f"  x{2 * index} -> n0_{index};")
        lines.append(f"  x{2 * index + 1} -> n0_{index};")
    # Internal edges.
    for level in range(p - 1):
        for index in range(level_sizes[level]):
            lines.append(f"  n{level}_{index} -> n{level + 1}_{index // 2};")
    lines.append("}")
    return "\n".join(lines)
