"""Text renderings of the paper's structural figures and result reports."""

from .ascii_art import (
    render_gbn,
    render_bnb_profile,
    render_splitter,
    render_function_node,
    render_routing_trace,
    render_multistage_routing,
)
from .reports import experiments_report, fault_tolerance_report
from .dot import multistage_to_dot, arbiter_to_dot

__all__ = [
    "multistage_to_dot",
    "arbiter_to_dot",
    "render_gbn",
    "render_bnb_profile",
    "render_splitter",
    "render_function_node",
    "render_routing_trace",
    "render_multistage_routing",
    "experiments_report",
    "fault_tolerance_report",
]
