"""Markdown experiment reports.

:func:`experiments_report` runs the full paper-vs-measured comparison
and renders it as markdown.  EXPERIMENTS.md in the repository root is a
curated snapshot of this output; regenerating it is one function call:

>>> from repro.viz import experiments_report
>>> print(experiments_report(max_m=6))            # doctest: +SKIP

:func:`fault_tolerance_report` does the same for the fault-tolerance
subsystem: it sweeps every single stuck-at fault, reports BIST
detection and localization outcomes, and demos the resilient service
(``python -m repro faults <n> --report`` prints it).
"""

from __future__ import annotations

from typing import List

from ..analysis import complexity as _cx_module  # noqa: F401  (re-exported style)
from ..analysis.complexity import (
    batcher_delay,
    batcher_comparators,
    bnb_delay,
    bnb_function_nodes,
    bnb_switch_slices,
    delay_leading_ratio,
    hardware_leading_ratio,
)
from ..analysis.delay import batcher_measured_delay, bnb_measured_delay
from ..analysis.tables import render_table1, render_table2
from ..analysis.verification import verify_router
from ..baselines.batcher import BatcherNetwork
from ..core.bnb import BNBNetwork

__all__ = ["experiments_report", "fault_tolerance_report"]


def fault_tolerance_report(m: int = 3, seed: int = 0) -> str:
    """Markdown report on the BIST/localization/failover subsystem.

    Exhaustive over all single stuck-at faults of the ``2**m``-input
    network (keep ``m`` small: the sweep simulates every fault against
    every probe).
    """
    from ..core.pipeline import PipelinedBNBFabric, stuck_control_override
    from ..faults import (
        build_bist_schedule,
        enumerate_switch_coordinates,
        localize,
    )
    from ..permutations.generators import random_permutation
    from ..service import ResilientFabric

    n = 1 << m
    schedule = build_bist_schedule(m)
    coordinates = enumerate_switch_coordinates(m)
    sections: List[str] = [
        "# Fault tolerance: BIST -> localize -> quarantine -> failover\n"
    ]
    sections.append(
        f"BIST schedule for N={n}: **{schedule.probe_count} probes** "
        f"exercise both control values of all {len(coordinates)} "
        f"switches ({2 * len(coordinates)} stuck-at faults)."
    )

    # Exhaustive detection + localization sweep.
    detect_probe_histogram: dict = {}
    unique = 0
    hit = 0
    for coordinate in coordinates:
        for value in (0, 1):
            pipeline = PipelinedBNBFabric(
                m,
                control_override=stuck_control_override(
                    coordinate.main_stage,
                    coordinate.nested,
                    coordinate.nested_stage,
                    coordinate.box,
                    coordinate.switch,
                    value,
                ),
            )
            observations = schedule.run(
                lambda words: pipeline.route_batch(words)
            )
            first_dirty = next(
                (
                    index
                    for index, observation in enumerate(observations)
                    if not observation.clean
                ),
                None,
            )
            detect_probe_histogram[first_dirty] = (
                detect_probe_histogram.get(first_dirty, 0) + 1
            )
            result = localize(
                m,
                observations,
                tables=[probe.controls for probe in schedule.probes],
            )
            unique += result.is_unique
            hit += (coordinate, value) in result.candidates
    total = 2 * len(coordinates)
    sections.append("\n## Exhaustive single stuck-at sweep\n")
    sections.append("| metric | value |")
    sections.append("|---|---|")
    sections.append(f"| faults swept | {total} |")
    sections.append(
        f"| detected by BIST | {total - detect_probe_histogram.get(None, 0)}"
        f"/{total} |"
    )
    sections.append(f"| localized uniquely | {unique}/{total} |")
    sections.append(f"| true fault in candidate set | {hit}/{total} |")
    sections.append(
        "| first-dirty-probe histogram | "
        + ", ".join(
            f"probe {index}: {count}"
            for index, count in sorted(
                item for item in detect_probe_histogram.items()
                if item[0] is not None
            )
        )
        + " |"
    )

    # Service demo: detect on live traffic, fail over, keep serving.
    demo_coordinate = coordinates[len(coordinates) // 2]
    pipeline = PipelinedBNBFabric(
        m,
        control_override=stuck_control_override(
            demo_coordinate.main_stage,
            demo_coordinate.nested,
            demo_coordinate.nested_stage,
            demo_coordinate.box,
            demo_coordinate.switch,
            1,
        ),
    )
    fabric = ResilientFabric(m, pipeline=pipeline, schedule=schedule)
    for index in range(4):
        fabric.submit(
            random_permutation(n, rng=seed + index).to_list(),
            tag=f"demo-{index}",
        )
        if index == 0 and not fabric.registry.is_quarantined:
            fabric.check(tag="scheduled-bist")
    sections.append(
        f"\n## Service demo (stuck-at-1 at "
        f"({demo_coordinate.main_stage},{demo_coordinate.nested},"
        f"{demo_coordinate.nested_stage},{demo_coordinate.box},"
        f"{demo_coordinate.switch}), 4 batches)\n"
    )
    sections.append("```")
    sections.append(fabric.summary())
    sections.append("```")
    return "\n".join(sections)


def experiments_report(max_m: int = 6, w: int = 8) -> str:
    """Build the paper-vs-measured markdown report."""
    sections: List[str] = ["# BNB reproduction: paper vs measured\n"]

    sections.append("## Structural counts vs closed forms (Eq. 6 / Eq. 10)\n")
    sections.append(
        "| N | BNB switches (built) | Eq.6 | BNB fn nodes (built) | Eq.6 | "
        "Batcher comparators (built) | Eq.10 |"
    )
    sections.append("|---|---|---|---|---|---|---|")
    for m in range(1, max_m + 1):
        n = 1 << m
        bnb = BNBNetwork(m)
        bat = BatcherNetwork(m)
        sections.append(
            f"| {n} | {bnb.switch_count} | {bnb_switch_slices(n)} | "
            f"{bnb.function_node_count} | {bnb_function_nodes(n)} | "
            f"{bat.comparator_count} | {batcher_comparators(n)} |"
        )

    sections.append("\n## Measured delay vs Eq. 9 / Eq. 12\n")
    sections.append("| N | BNB measured | Eq.9 | Batcher measured | Eq.12 |")
    sections.append("|---|---|---|---|---|")
    for m in range(1, max_m + 1):
        n = 1 << m
        sections.append(
            f"| {n} | {bnb_measured_delay(m):.0f} | {bnb_delay(n):.0f} | "
            f"{batcher_measured_delay(m):.0f} | {batcher_delay(n):.0f} |"
        )

    sections.append("\n## Headline ratios (Section 5.3)\n")
    sections.append("| N | hardware BNB/Batcher | delay BNB/Batcher |")
    sections.append("|---|---|---|")
    for m in (3, 6, 10, 14, 20):
        n = 1 << m
        sections.append(
            f"| {n} | {hardware_leading_ratio(n, w):.3f} | "
            f"{delay_leading_ratio(n):.3f} |"
        )

    sections.append("\n## Theorem 2 verification\n")
    for n, mode in ((4, "exhaustive"), (16, "sampled"), (64, "sampled")):
        report = verify_router("bnb", n, mode=mode, samples=100)
        sections.append(f"- {report.summary()}")

    sections.append("\n## Tables at N=1024\n```")
    sections.append(render_table1(1024, w=w))
    sections.append("")
    sections.append(render_table2(1024))
    sections.append("```")
    return "\n".join(sections)
