"""Markdown experiment reports.

:func:`experiments_report` runs the full paper-vs-measured comparison
and renders it as markdown.  EXPERIMENTS.md in the repository root is a
curated snapshot of this output; regenerating it is one function call:

>>> from repro.viz import experiments_report
>>> print(experiments_report(max_m=6))            # doctest: +SKIP
"""

from __future__ import annotations

from typing import List

from ..analysis import complexity as _cx_module  # noqa: F401  (re-exported style)
from ..analysis.complexity import (
    batcher_delay,
    batcher_comparators,
    bnb_delay,
    bnb_function_nodes,
    bnb_switch_slices,
    delay_leading_ratio,
    hardware_leading_ratio,
)
from ..analysis.delay import batcher_measured_delay, bnb_measured_delay
from ..analysis.tables import render_table1, render_table2
from ..analysis.verification import verify_router
from ..baselines.batcher import BatcherNetwork
from ..core.bnb import BNBNetwork

__all__ = ["experiments_report"]


def experiments_report(max_m: int = 6, w: int = 8) -> str:
    """Build the paper-vs-measured markdown report."""
    sections: List[str] = ["# BNB reproduction: paper vs measured\n"]

    sections.append("## Structural counts vs closed forms (Eq. 6 / Eq. 10)\n")
    sections.append(
        "| N | BNB switches (built) | Eq.6 | BNB fn nodes (built) | Eq.6 | "
        "Batcher comparators (built) | Eq.10 |"
    )
    sections.append("|---|---|---|---|---|---|---|")
    for m in range(1, max_m + 1):
        n = 1 << m
        bnb = BNBNetwork(m)
        bat = BatcherNetwork(m)
        sections.append(
            f"| {n} | {bnb.switch_count} | {bnb_switch_slices(n)} | "
            f"{bnb.function_node_count} | {bnb_function_nodes(n)} | "
            f"{bat.comparator_count} | {batcher_comparators(n)} |"
        )

    sections.append("\n## Measured delay vs Eq. 9 / Eq. 12\n")
    sections.append("| N | BNB measured | Eq.9 | Batcher measured | Eq.12 |")
    sections.append("|---|---|---|---|---|")
    for m in range(1, max_m + 1):
        n = 1 << m
        sections.append(
            f"| {n} | {bnb_measured_delay(m):.0f} | {bnb_delay(n):.0f} | "
            f"{batcher_measured_delay(m):.0f} | {batcher_delay(n):.0f} |"
        )

    sections.append("\n## Headline ratios (Section 5.3)\n")
    sections.append("| N | hardware BNB/Batcher | delay BNB/Batcher |")
    sections.append("|---|---|---|")
    for m in (3, 6, 10, 14, 20):
        n = 1 << m
        sections.append(
            f"| {n} | {hardware_leading_ratio(n, w):.3f} | "
            f"{delay_leading_ratio(n):.3f} |"
        )

    sections.append("\n## Theorem 2 verification\n")
    for n, mode in ((4, "exhaustive"), (16, "sampled"), (64, "sampled")):
        report = verify_router("bnb", n, mode=mode, samples=100)
        sections.append(f"- {report.summary()}")

    sections.append("\n## Tables at N=1024\n```")
    sections.append(render_table1(1024, w=w))
    sections.append("")
    sections.append(render_table2(1024))
    sections.append("```")
    return "\n".join(sections)
