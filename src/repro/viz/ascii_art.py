"""ASCII renderings of Figs. 1-5.

The paper's figures are structural diagrams; these renderers regenerate
their content as deterministic text so the documentation and the figure
benchmarks can show (and diff) the structures without a graphics stack.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.arbiter import Arbiter
from ..core.bnb import BNBNetwork, BNBRoutingRecord
from ..core.gbn import GeneralizedBaselineNetwork
from ..core.splitter import Splitter
from ..core.words import Word

__all__ = [
    "render_gbn",
    "render_bnb_profile",
    "render_splitter",
    "render_function_node",
    "render_routing_trace",
    "render_multistage_routing",
]


def render_gbn(m: int) -> str:
    """Fig. 1: the stage/box inventory of an ``2**m``-input GBN."""
    network = GeneralizedBaselineNetwork(m)
    lines = [f"B({m}, SB): {network.n}-input generalized baseline network"]
    for spec in network.stages():
        boxes = " ".join(f"[SB({spec.box_exponent})]" for _ in range(spec.box_count))
        lines.append(
            f"  stage-{spec.stage}: {spec.box_count} x SB({spec.box_exponent})"
            f" ({spec.box_size}x{spec.box_size})   {boxes}"
        )
        if spec.stage < m - 1:
            lines.append(
                f"           | U_{spec.connection_k}^{m} "
                f"(2^{spec.connection_k}-unshuffle) |"
            )
    return "\n".join(lines)


def render_bnb_profile(m: int, w: int = 0) -> str:
    """Fig. 3: the NB(i, l) / BSN(i, l) profile of the BNB network."""
    network = BNBNetwork(m, w=w)
    lines = [
        f"BNB network, N={network.n}, q={m}+{w} bit slices "
        f"(slice i of stage-i nested networks is the BSN)"
    ]
    for i, stage in enumerate(network.profile()):
        entries = ", ".join(
            f"{spec.label}[{spec.size}x{spec.size}, {spec.slice_count} slices, "
            f"{spec.bsn_label}=slice-{spec.bsn_slice}]"
            for spec in stage
        )
        lines.append(f"  main stage-{i}: {entries}")
        if i < m - 1:
            lines.append(f"        | U_{m - i}^{m} unshuffle |")
    return "\n".join(lines)


def render_splitter(p: int, bits: Optional[Sequence[int]] = None) -> str:
    """Fig. 4: an ``sp(p)`` splitter, optionally with live signal values.

    With *bits* given, shows the arbiter's up values, down flags and
    the resulting switch settings for that input vector.
    """
    splitter = Splitter(p)
    lines = [f"sp({p}): 2^{p}-input splitter = A({p}) arbiter + sw({p})"]
    if p == 1:
        lines.append("  A(1) is wiring: control = upper input bit")
        if bits is not None:
            outputs, _rec = splitter.route_bits(list(bits))
            lines.append(f"  inputs  {list(bits)}")
            lines.append(f"  outputs {outputs}")
        return "\n".join(lines)
    if bits is None:
        arbiter = Arbiter(p)
        lines.append(
            f"  arbiter: {arbiter.node_count} function nodes in {p} levels"
        )
        lines.append(f"  switches: {splitter.switch_count} x sw(1)")
        return "\n".join(lines)
    outputs, record = splitter.route_bits(list(bits), record=True)
    assert record is not None and record.arbiter_trace is not None
    trace = record.arbiter_trace
    lines.append(f"  inputs   {list(bits)}")
    for level in range(len(trace.nodes) - 1, -1, -1):
        ups = " ".join(str(node.z_up) for node in trace.nodes[level])
        downs = " ".join(str(node.z_down) for node in trace.nodes[level])
        lines.append(f"  level {level}: z_up [{ups}]  z_down [{downs}]")
    lines.append(f"  flags    {record.flags}")
    lines.append(
        "  switches "
        + " ".join("X" if c else "=" for c in record.controls)
        + "   (= straight, X exchange)"
    )
    lines.append(f"  outputs  {outputs}")
    return "\n".join(lines)


def render_function_node() -> str:
    """Fig. 5: the function-node schematic as text."""
    return "\n".join(
        [
            "function node (Fig. 5):",
            "  x1 --+--[XOR]-- z_u ----------------> to parent",
            "  x2 --+            |",
            "                    +--[AND  z_d]--> y1 (upper child flag)",
            "                    +--[NOT]-[OR z_d]--> y2 (lower child flag)",
            "  z_d <----------------------------- from parent",
            "  semantics: z_u = x1 XOR x2;",
            "             z_u == 0 -> generate y1=0, y2=1;",
            "             z_u == 1 -> forward  y1=y2=z_d.",
        ]
    )


def render_multistage_routing(network, controls) -> str:
    """A column-by-column picture of one multistage routing pass.

    *network* is a :class:`~repro.topology.multistage.MultistageNetwork`
    and *controls* its per-stage settings; the rendering shows each
    line's packet value after every column (``=`` straight, ``X``
    exchange per switch), regenerating the style of hand-drawn routing
    examples in the MIN literature.
    """
    values, _traces = network.route_with_controls(
        list(range(network.n)), controls
    )
    lines = [f"{network.name}: N={network.n}, {network.stage_count} stages"]
    state = list(range(network.n))
    if network.input_wiring is not None:
        state = network._apply_wiring(state, network.input_wiring)
    header = "line: " + " ".join(f"{j:>3}" for j in range(network.n))
    lines.append(header)
    lines.append("  in: " + " ".join(f"{v:>3}" for v in state))
    for stage_index, column in enumerate(network.columns):
        marks = " ".join(
            " X " if c else " = " for c in controls[stage_index]
        )
        lines.append(f"      {marks}")
        state = column.apply(state, controls[stage_index])
        if stage_index < len(network.wirings):
            state = network._apply_wiring(state, network.wirings[stage_index])
        lines.append(f"  s{stage_index}: " + " ".join(f"{v:>3}" for v in state))
    if network.output_wiring is not None:
        state = network._apply_wiring(state, network.output_wiring)
        lines.append(" out: " + " ".join(f"{v:>3}" for v in state))
    assert state == values
    return "\n".join(lines)


def render_routing_trace(
    network: BNBNetwork, record: BNBRoutingRecord, words: Sequence[Word]
) -> str:
    """Per-packet trajectories of one routing pass."""
    lines = [f"routing trace, N={network.n}:"]
    for path in record.all_packet_paths(list(words)):
        hops = " -> ".join(
            f"NB({step.main_stage},{step.nested_network})@{step.line}"
            for step in path.steps
        )
        status = "ok" if path.delivered else "MISROUTED"
        lines.append(
            f"  in {path.input_line:>3} addr {path.address:>3}: {hops} "
            f"-> out {path.output_line} [{status}]"
        )
    return "\n".join(lines)
