PYTHON ?= python

.PHONY: install test bench examples report clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples OK"

report:
	$(PYTHON) -m repro report

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
		benchmarks/out verilog_out dot_out
