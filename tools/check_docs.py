"""Consistency checks for the documentation set.

Three classes of drift this catches, each of which has actually
happened to projects this size:

1. **Dead cross-links** — every relative markdown link in the docs
   (and the top-level README) must resolve to a file in the repo.
2. **Phantom CLI flags** — every ``--flag`` written in a documented
   ``repro`` invocation must exist on that subcommand's argparse
   parser (the parser is the source of truth: `repro.cli.build_parser`).
3. **Phantom subcommands** — every ``repro <sub>`` / ``python -m repro
   <sub>`` in a fenced code block or inline code span must name a real
   subparser.

Invocations are recognised only where ``repro`` appears as a *command*
(the word followed by whitespace) — module paths like ``repro.core``
never match.  Inline code spans are extracted across line breaks with
whitespace collapsed, because prose wraps (``repro serve N --engine
vector`` split over two lines is one invocation).

Usage::

    PYTHONPATH=src python tools/check_docs.py [repo_root]

Exit 0 when clean, 1 with a problem list otherwise.  CI runs this on
every push; ``tests/test_docs_consistency.py`` runs the same functions
under pytest.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Dict, List, Set, Tuple

#: The documentation set under check: all of docs/ plus these roots.
TOP_LEVEL_DOCS = ("README.md", "CHANGELOG.md")

_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
_SPAN_RE = re.compile(r"`([^`]+)`", re.DOTALL)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_COMMAND_RE = re.compile(r"(?:python -m )?\brepro\s+(.*)$")
#: Leading VAR=value environment assignments before the command proper
#: (``PYTHONPATH=src python -m repro ...``) — stripped before matching,
#: so env-prefixed invocations are validated, not skipped.
_ENV_RE = re.compile(r"^(?:[A-Za-z_][A-Za-z0-9_]*=\S+\s+)+")


def doc_paths(repo_root: pathlib.Path) -> List[pathlib.Path]:
    paths = sorted((repo_root / "docs").glob("*.md"))
    paths += [
        repo_root / name
        for name in TOP_LEVEL_DOCS
        if (repo_root / name).is_file()
    ]
    return paths


# ----------------------------------------------------------------------
# 1. Cross-links
# ----------------------------------------------------------------------
def check_links(repo_root: pathlib.Path) -> List[str]:
    errors: List[str] = []
    for path in doc_paths(repo_root):
        for target in _LINK_RE.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:  # pure in-page anchor
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(repo_root)}: dead link -> {target}"
                )
    return errors


# ----------------------------------------------------------------------
# 2 + 3. CLI invocations vs the argparse source of truth
# ----------------------------------------------------------------------
def cli_surface() -> Dict[str, Set[str]]:
    """subcommand -> set of option strings, from the real parser."""
    from repro.cli import build_parser

    parser = build_parser()
    subactions = [
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ]
    surface: Dict[str, Set[str]] = {}
    for subaction in subactions:
        for name, subparser in subaction.choices.items():
            flags: Set[str] = set()
            for action in subparser._actions:
                flags.update(action.option_strings)
            surface[name] = flags
    return surface


def extract_invocations(text: str) -> List[Tuple[str, str]]:
    """All ``repro ...`` command lines in *text* as (context, argv-tail).

    Scans fenced code blocks line by line, then inline code spans
    (with the fences removed first so nothing is counted twice);
    spans are whitespace-collapsed so a wrapped invocation still
    parses.
    """
    invocations: List[Tuple[str, str]] = []
    fenced = _FENCE_RE.findall(text)
    for block in fenced:
        for line in block.splitlines():
            line = line.strip().lstrip("$ ").strip()
            line = _ENV_RE.sub("", line)
            # Anchored: `repro` must BE the command, so python module
            # paths (`repro.core`) and imports (`from repro import`)
            # in code blocks never parse as invocations.
            match = _COMMAND_RE.match(line)
            if match:
                invocations.append(("fenced", match.group(1)))
    remainder = _FENCE_RE.sub("", text)
    for span in _SPAN_RE.findall(remainder):
        collapsed = " ".join(span.split())
        collapsed = _ENV_RE.sub("", collapsed)
        match = _COMMAND_RE.match(collapsed)
        if match:
            invocations.append(("inline", match.group(1)))
    return invocations


def _clean_tokens(tail: str) -> List[str]:
    # An invocation ends at a pipe, comment, or chained command.
    for stop in ("|", "#", "&&"):
        tail = tail.split(stop, 1)[0]
    tokens = []
    for token in tail.split():
        token = token.strip("[](),&`")
        if token:
            tokens.append(token)
    return tokens


def check_cli(repo_root: pathlib.Path) -> List[str]:
    surface = cli_surface()
    errors: List[str] = []
    for path in doc_paths(repo_root):
        rel = path.relative_to(repo_root)
        for _context, tail in extract_invocations(path.read_text()):
            tokens = _clean_tokens(tail)
            if not tokens:
                continue
            head = tokens[0]
            if head in ("-h", "--help"):
                continue
            if head.startswith("-"):
                errors.append(f"{rel}: 'repro {head}' is not a subcommand")
                continue
            if head not in surface:
                errors.append(
                    f"{rel}: documented subcommand 'repro {head}' does not "
                    f"exist (have: {', '.join(sorted(surface))})"
                )
                continue
            known = surface[head] | {"-h", "--help"}
            for token in tokens[1:]:
                if not token.startswith("--"):
                    continue  # positional / placeholder
                flag = token.split("=", 1)[0]
                if flag not in known:
                    errors.append(
                        f"{rel}: 'repro {head}' has no flag {flag}"
                    )
    return errors


def main(argv: List[str]) -> int:
    repo_root = pathlib.Path(
        argv[1] if len(argv) > 1 else pathlib.Path(__file__).parent.parent
    ).resolve()
    paths = doc_paths(repo_root)
    if not paths:
        print(f"error: no documentation found under {repo_root}")
        return 1
    errors = check_links(repo_root) + check_cli(repo_root)
    if errors:
        print(f"{len(errors)} documentation problem(s):")
        for problem in errors:
            print(f"  - {problem}")
        return 1
    print(f"{len(paths)} document(s) clean: links resolve, CLI surface matches")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
