"""End-to-end wire smoke: boot ``repro serve``, speak both framings.

The CI counterpart of ``tests/test_wire_framing.py``'s differential
parity test, but against the *real deployment surface*: a ``repro
serve`` subprocess (batch engine) on a loopback port, exercised
through the public :class:`repro.client.GatewayClient` over the JSON
framing and the binary framing in turn.  Each framing runs hello /
ping / stats / send / send_batch; the comparable response fields must
match across framings, every batched word must deliver, and the
server must report the negotiated protocol version.

Usage::

    python tools/wire_smoke.py [--port PORT]

Exit code 0 on success, 1 on any mismatch or failure.  No
dependencies beyond the package itself — CI runs it right after the
unit suite.
"""

from __future__ import annotations

import argparse
import asyncio
import socket
import subprocess
import sys
import time

import numpy as np

from repro.client import GatewayClient
from repro.server.framing import PROTOCOL_VERSION, jsonable

N = 64
M = 6
WORDS = 512  # 8 full frames per send_batch


async def exercise(port: int, binary: bool) -> dict:
    """One framing's worth of traffic; returns comparable fields."""
    async with GatewayClient("127.0.0.1", port, binary=binary) as client:
        assert client.protocol_version == PROTOCOL_VERSION, (
            f"negotiated {client.protocol_version}, "
            f"compiled {PROTOCOL_VERSION}"
        )
        assert "batch" in client.features and "binary" in client.features
        pong = await client.ping()
        rng = np.random.default_rng(3 if binary else 5)
        dests = np.concatenate(
            [rng.permutation(N) for _ in range(WORDS // N)]
        ).astype(np.int64)
        batch = await client.send_batch(dests, retry=16)
        assert batch["delivered"] == WORDS, (
            f"{batch['rejected']} of {WORDS} words rejected"
        )
        single = await client.send(7, payload="smoke", server_retry=True)
        stats = await client.stats()
        return jsonable(
            {
                "n": client.n,
                "protocol_version": list(client.protocol_version),
                "ping_ok": pong["ok"],
                "batch_count": batch["count"],
                "batch_delivered": batch["delivered"],
                "batch_mode_table": batch["mode_table"],
                "send_dest": single["dest"],
                "send_mode": single["mode"],
                "stats_n": stats["stats"]["n"],
                "stats_version": stats["protocol_version"],
            }
        )


def wait_for_port(port: int, deadline: float = 20.0) -> None:
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        try:
            socket.create_connection(("127.0.0.1", port), 0.5).close()
            return
        except OSError:
            time.sleep(0.2)
    raise TimeoutError(f"server on port {port} never came up")


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=0)
    args = parser.parse_args(argv[1:])
    port = args.port or free_port()

    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            str(N),
            "--engine",
            "batch",
            "--port",
            str(port),
            "--duration",
            "120",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        wait_for_port(port)
        via_json = asyncio.run(exercise(port, binary=False))
        via_binary = asyncio.run(exercise(port, binary=True))
        if via_json != via_binary:
            print("FRAMING MISMATCH")
            print(f"  json:   {via_json}")
            print(f"  binary: {via_binary}")
            return 1
        print(f"json framing:   {via_json}")
        print(f"binary framing: {via_binary}")
        print(
            f"wire smoke OK: both framings delivered {WORDS} batched "
            f"words + 1 single word on protocol "
            f"{'.'.join(map(str, PROTOCOL_VERSION))}"
        )
        return 0
    except Exception as error:  # noqa: BLE001 — smoke must report, not crash
        print(f"wire smoke FAILED: {type(error).__name__}: {error}")
        return 1
    finally:
        server.terminate()
        try:
            output, _ = server.communicate(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
            output, _ = server.communicate()
        if output:
            print("--- server log ---")
            print(output.rstrip())


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
