"""Unit and property tests for the arbiter A(p) — the paper's Section 4.

The load-bearing invariant (used by Theorem 3's proof): among the
type-2 pairs (switch inputs with unequal bits), exactly half receive
flag 0 and half receive flag 1, provided the number of 1-inputs is
even.  Type-1 pairs always receive flags (0, 1).
"""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.core import Arbiter, arbiter_flags


def balanced_parity_bits(p):
    """All bit vectors of length 2**p with an even number of ones."""
    for bits in itertools.product([0, 1], repeat=1 << p):
        if sum(bits) % 2 == 0:
            yield list(bits)


class TestStructure:
    def test_node_count(self):
        for p in range(2, 7):
            assert Arbiter(p).node_count == (1 << p) - 1

    def test_depth(self):
        for p in range(2, 7):
            assert Arbiter(p).depth == p

    def test_rejects_p1(self):
        with pytest.raises(ValueError, match="wiring"):
            Arbiter(1)

    def test_input_length_validation(self):
        with pytest.raises(ValueError):
            Arbiter(2).flags([0, 1])

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            Arbiter(2).flags([0, 1, 2, 1])


class TestAlgorithmSteps:
    def test_type1_pair_generates_0_1(self):
        """Rule 2: a node over equal bits sends 0 up and flags (0,1)."""
        flags = Arbiter(2).flags([0, 0, 1, 1])
        assert flags == [0, 1, 0, 1]

    def test_type2_pairs_get_paired_flags(self):
        """Rule 3: two type-2 pairs meet at their common ancestor,
        which hands 0 to one and 1 to the other."""
        trace = Arbiter(2).trace([0, 1, 1, 0])
        assert trace.flags[0] == trace.flags[1]
        assert trace.flags[2] == trace.flags[3]
        assert trace.flags[0] != trace.flags[2]

    def test_root_echo(self):
        """Rule 4: the root's z_down is its own z_up."""
        for bits in ([0, 1, 1, 0], [1, 1, 0, 0], [1, 0, 1, 0]):
            trace = Arbiter(2).trace(bits)
            assert trace.root().z_down == trace.root().z_up

    def test_trace_node_count(self):
        trace = Arbiter(3).trace([0, 1, 1, 0, 1, 0, 0, 1])
        assert trace.node_count == 7

    def test_trace_records_consistent(self):
        trace = Arbiter(3).trace([1, 1, 0, 0, 1, 0, 0, 1])
        for level in trace.nodes:
            for node in level:
                assert node.z_up == node.x1 ^ node.x2
                if node.z_up == 0:
                    assert (node.y1, node.y2) == (0, 1)
                else:
                    assert node.y1 == node.y2 == node.z_down


class TestPairingInvariant:
    @pytest.mark.parametrize("p", [2, 3])
    def test_exhaustive_half_and_half(self, p):
        """Exhaustive: over every even-parity input, the type-2 pairs
        split evenly between flag 0 and flag 1."""
        arbiter = Arbiter(p)
        for bits in balanced_parity_bits(p):
            flags = arbiter.flags(bits)
            type2_flags = [
                flags[2 * t]
                for t in range((1 << p) // 2)
                if bits[2 * t] != bits[2 * t + 1]
            ]
            assert sum(type2_flags) * 2 == len(type2_flags), bits

    @given(st.lists(st.integers(0, 1), min_size=16, max_size=16))
    def test_property_16_inputs(self, bits):
        if sum(bits) % 2:
            bits[0] ^= 1  # force even parity
        flags = Arbiter(4).flags(bits)
        type2_flags = [
            flags[2 * t] for t in range(8) if bits[2 * t] != bits[2 * t + 1]
        ]
        assert sum(type2_flags) * 2 == len(type2_flags)

    @given(st.lists(st.integers(0, 1), min_size=16, max_size=16))
    def test_pair_members_share_flags_iff_type2(self, bits):
        flags = Arbiter(4).flags(bits)
        for t in range(8):
            if bits[2 * t] != bits[2 * t + 1]:
                assert flags[2 * t] == flags[2 * t + 1]
            else:
                assert (flags[2 * t], flags[2 * t + 1]) == (0, 1)


class TestConvenienceFunction:
    def test_two_inputs_wiring(self):
        assert arbiter_flags([0, 1]) == [0, 0]
        assert arbiter_flags([1, 0]) == [0, 0]

    def test_delegates_to_tree(self):
        assert arbiter_flags([0, 0, 1, 1]) == Arbiter(2).flags([0, 0, 1, 1])

    def test_rejects_single_input(self):
        with pytest.raises(ValueError):
            arbiter_flags([0])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(Exception):
            arbiter_flags([0, 1, 0])
