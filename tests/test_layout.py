"""Wire-length / layout model tests."""

import pytest

from repro.hardware.layout import (
    bnb_total_wire_length,
    gbn_wiring_costs,
    wiring_cost,
)
from repro.topology.connections import (
    identity_connection,
    perfect_shuffle_connection,
    unshuffle_connection,
)


class TestWiringCost:
    def test_identity_costs_nothing(self):
        cost = wiring_cost(identity_connection(8))
        assert cost.total_length == 0
        assert cost.max_length == 0
        assert cost.track_count == 0
        assert cost.average_length == 0.0

    def test_full_unshuffle_n4(self):
        # U_2 on 4 lines: 0->0, 1->2, 2->1, 3->3.
        cost = wiring_cost(unshuffle_connection(4, 2))
        assert cost.total_length == 2
        assert cost.max_length == 1
        assert cost.track_count == 2

    def test_shuffle_longest_wire_spans_half(self):
        n = 16
        cost = wiring_cost(perfect_shuffle_connection(n))
        # Line n/2 - 1 maps to n - 2: a span of ~n/2.
        assert cost.max_length == n // 2 - 1

    def test_track_count_bounded_by_wires(self):
        for k in range(1, 5):
            cost = wiring_cost(unshuffle_connection(16, k))
            assert cost.track_count <= 16
            assert cost.wire_count == 16


class TestGBNWiring:
    def test_block_locality(self):
        """Later GBN connections act within smaller blocks, so their
        wire lengths shrink: the 'regularity' the paper mentions has a
        wiring payoff."""
        costs = gbn_wiring_costs(5)
        totals = [cost.total_length for cost in costs]
        assert totals == sorted(totals, reverse=True)
        maxima = [cost.max_length for cost in costs]
        assert maxima == sorted(maxima, reverse=True)

    def test_connection_count(self):
        assert len(gbn_wiring_costs(4)) == 3


class TestBNBWireLength:
    def test_monotone_in_size_and_width(self):
        assert bnb_total_wire_length(4) < bnb_total_wire_length(5)
        assert bnb_total_wire_length(4, w=0) < bnb_total_wire_length(4, w=8)

    def test_m1_has_no_connections(self):
        assert bnb_total_wire_length(1) == 0

    def test_superlinear_growth(self):
        """Total wiring grows faster than N log N — wiring, not
        switches, dominates physical area at scale."""
        a = bnb_total_wire_length(6)
        b = bnb_total_wire_length(8)
        growth = b / a
        n_ratio = (1 << 8) / (1 << 6)
        assert growth > n_ratio * (8 / 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            bnb_total_wire_length(0)
