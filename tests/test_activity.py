"""Switching-activity analysis tests."""

import pytest

from repro.analysis.activity import (
    average_activity,
    batcher_activity,
    bnb_activity,
)
from repro.baselines import BatcherNetwork
from repro.core import BNBNetwork
from repro.permutations import Permutation, random_permutation


class TestBNBActivity:
    def test_decision_count_is_per_slice_switch_total(self):
        net = BNBNetwork(3)
        profile = bnb_activity(net, random_permutation(8, rng=1))
        expected = sum(
            (1 << i) * ((1 << (3 - i)) // 2) * (3 - i) for i in range(3)
        )
        assert profile.decisions == expected

    def test_identity_still_switches(self):
        """Even the identity permutation exchanges some switches: the
        radix placement is about bits, not initial order."""
        net = BNBNetwork(3)
        profile = bnb_activity(net, Permutation.identity(8))
        assert profile.exchanges > 0

    def test_fraction_bounds(self):
        net = BNBNetwork(4)
        for seed in range(5):
            profile = bnb_activity(net, random_permutation(16, rng=seed))
            assert 0.0 <= profile.exchange_fraction <= 1.0

    def test_per_stage_sums(self):
        net = BNBNetwork(4)
        profile = bnb_activity(net, random_permutation(16, rng=2))
        assert sum(profile.per_main_stage) == profile.exchanges
        assert len(profile.per_main_stage) == 4


class TestBatcherActivity:
    def test_decision_count_is_comparators(self):
        net = BatcherNetwork(4)
        profile = batcher_activity(net, random_permutation(16, rng=1))
        assert profile.decisions == net.comparator_count

    def test_identity_never_swaps(self):
        net = BatcherNetwork(4)
        profile = batcher_activity(net, Permutation.identity(16))
        assert profile.exchanges == 0

    def test_reversal_swaps_heavily(self):
        from repro.permutations import reversal

        net = BatcherNetwork(4)
        profile = batcher_activity(net, reversal(4))
        assert profile.exchange_fraction > 0.3


class TestAverages:
    def test_bnb_near_half(self):
        """Random traffic exchanges ~half of the BNB decision switches."""
        stats = average_activity("bnb", 4, samples=15, seed=0)
        assert 0.35 < stats["mean_exchange_fraction"] < 0.65

    def test_batcher_busier_than_bnb(self):
        """Measured, not assumed: the odd-even network swaps a *larger*
        fraction of its comparators (~0.58) than the BNB exchanges of
        its switches (~0.49) on uniform traffic — merging keeps moving
        words that radix partitioning settles early."""
        batcher = average_activity("batcher", 4, samples=15, seed=0)
        bnb = average_activity("bnb", 4, samples=15, seed=0)
        assert batcher["mean_exchange_fraction"] > bnb["mean_exchange_fraction"]
        assert batcher["mean_exchange_fraction"] > 0.5

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            average_activity("crossbar", 3)
