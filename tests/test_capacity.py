"""Exact permutation-capacity enumeration for small networks."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.topology import (
    baseline_network,
    butterfly_network,
    flip_network,
    has_unique_settings,
    omega_network,
    permutation_capacity,
    realizable_permutations,
)


class TestCapacity:
    @pytest.mark.parametrize(
        "build", [baseline_network, omega_network, butterfly_network, flip_network]
    )
    def test_n4_capacity_is_16(self, build):
        assert permutation_capacity(build(4)) == 16

    @pytest.mark.parametrize(
        "build", [baseline_network, omega_network, butterfly_network, flip_network]
    )
    def test_n8_unique_settings(self, build):
        """Every one of the 2^12 settings realizes a distinct
        permutation — the unique-path property, verified exhaustively."""
        assert has_unique_settings(build(8))

    def test_n8_fraction_of_all_permutations(self):
        capacity = permutation_capacity(baseline_network(8))
        assert capacity == 4096
        fraction = capacity / math.factorial(8)
        assert fraction == pytest.approx(0.1016, abs=1e-3)

    def test_realized_are_valid_permutations(self):
        realized = realizable_permutations(baseline_network(4))
        for mapping in realized:
            assert sorted(mapping) == [0, 1, 2, 3]

    def test_guard(self):
        with pytest.raises(ConfigurationError, match="refused"):
            realizable_permutations(baseline_network(32))


class TestCapacityVsSampling:
    def test_enumerated_set_matches_self_routing(self):
        """A permutation passes destination-tag self-routing iff it is
        in the realizable set (for the baseline's unique paths)."""
        import itertools

        from repro.permutations import Permutation
        from repro.topology import baseline_routing_bit_schedule

        net = baseline_network(4)
        realized = realizable_permutations(net)
        schedule = baseline_routing_bit_schedule(4)
        for p in itertools.permutations(range(4)):
            passes = net.self_route(list(p), schedule).delivered
            assert passes == (tuple(p) in realized), p
