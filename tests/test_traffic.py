"""Tests for partial-permutation and contention-resolved traffic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BNBNetwork,
    MultipassRouter,
    complete_partial_permutation,
    route_partial,
)
from repro.exceptions import InputError


class TestCompletion:
    def test_fills_unused_addresses(self):
        full, real = complete_partial_permutation([3, None, 0, None])
        assert sorted(full) == [0, 1, 2, 3]
        assert full[0] == 3 and full[2] == 0
        assert real == [True, False, True, False]

    def test_all_idle(self):
        full, real = complete_partial_permutation([None] * 4)
        assert sorted(full) == [0, 1, 2, 3]
        assert real == [False] * 4

    def test_already_full(self):
        full, real = complete_partial_permutation([1, 0, 3, 2])
        assert full == [1, 0, 3, 2]
        assert all(real)

    def test_rejects_duplicates(self):
        with pytest.raises(InputError, match="twice"):
            complete_partial_permutation([1, 1, None, None])

    def test_rejects_out_of_range(self):
        with pytest.raises(InputError, match="out of range"):
            complete_partial_permutation([4, None, None, None])

    @given(
        st.lists(
            st.one_of(st.none(), st.integers(0, 15)), min_size=16, max_size=16
        )
    )
    def test_property_completion(self, destinations):
        active = [d for d in destinations if d is not None]
        if len(set(active)) != len(active):
            with pytest.raises(InputError):
                complete_partial_permutation(destinations)
            return
        full, real = complete_partial_permutation(destinations)
        assert sorted(full) == list(range(16))
        for j, dest in enumerate(destinations):
            if dest is not None:
                assert full[j] == dest
                assert real[j]


class TestRoutePartial:
    def test_active_words_delivered(self):
        net = BNBNetwork(3)
        result = route_partial(
            net, [(5, "a"), None, (0, "b"), None, (7, "c"), None, None, None]
        )
        assert result.outputs[5] == "a"
        assert result.outputs[0] == "b"
        assert result.outputs[7] == "c"
        assert result.active_count == 3
        assert result.filler_count == 5

    def test_unrequested_outputs_are_none(self):
        net = BNBNetwork(3)
        result = route_partial(net, [(2, "only")] + [None] * 7)
        assert [o is not None for o in result.outputs] == [
            line == 2 for line in range(8)
        ]

    def test_single_active_word_every_position(self):
        net = BNBNetwork(3)
        for source in range(8):
            for dest in range(8):
                requests = [None] * 8
                requests[source] = (dest, (source, dest))
                result = route_partial(net, requests)
                assert result.outputs[dest] == (source, dest)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            route_partial(BNBNetwork(2), [None, None])


class TestMultipass:
    def test_round_count_equals_max_multiplicity(self):
        net = BNBNetwork(3)
        router = MultipassRouter(net)
        requests = [(3, "a"), (3, "b"), (3, "c"), (0, "d"), None, None, None, None]
        result = router.route(requests)
        assert result.rounds == 3
        assert result.max_multiplicity == 3

    def test_fifo_order_per_destination(self):
        net = BNBNetwork(3)
        router = MultipassRouter(net)
        requests = [(1, f"req{j}") for j in range(8)]  # total contention
        result = router.route(requests)
        assert result.rounds == 8
        assert result.all_payloads_at(1) == [f"req{j}" for j in range(8)]
        # No other output ever receives anything.
        for output in range(8):
            if output != 1:
                assert result.all_payloads_at(output) == []

    def test_permutation_traffic_is_one_round(self):
        net = BNBNetwork(3)
        router = MultipassRouter(net)
        requests = [(7 - j, j) for j in range(8)]
        result = router.route(requests)
        assert result.rounds == 1
        for j in range(8):
            assert result.all_payloads_at(7 - j) == [j]

    def test_all_idle_is_zero_rounds(self):
        router = MultipassRouter(BNBNetwork(2))
        result = router.route([None] * 4)
        assert result.rounds == 0
        assert result.max_multiplicity == 0

    def test_every_request_delivered_exactly_once(self):
        import random

        net = BNBNetwork(4)
        router = MultipassRouter(net)
        rng = random.Random(5)
        requests = []
        for j in range(16):
            if rng.random() < 0.2:
                requests.append(None)
            else:
                requests.append((rng.randrange(16), f"p{j}"))
        result = router.route(requests)
        delivered = [
            payload
            for output in range(16)
            for payload in result.all_payloads_at(output)
        ]
        expected = [req[1] for req in requests if req is not None]
        assert sorted(delivered) == sorted(expected)

    def test_validation(self):
        router = MultipassRouter(BNBNetwork(2))
        with pytest.raises(ValueError):
            router.route([None] * 3)
        with pytest.raises(InputError):
            router.route([(9, "x"), None, None, None])
