"""Empirical scaling fits recover the paper's coefficients from data."""

import pytest

from repro.analysis.scaling import (
    batcher_delay_scaling,
    batcher_switch_scaling,
    bnb_delay_scaling,
    bnb_switch_scaling,
    fit_log_polynomial,
    fit_per_input_series,
)


class TestFitter:
    def test_exact_polynomial_recovered(self):
        fit = fit_log_polynomial(
            [1, 2, 3, 4, 5], [2 + 3 * m + 0.5 * m**2 for m in range(1, 6)], 2
        )
        assert fit.coefficients == pytest.approx((2.0, 3.0, 0.5), abs=1e-8)
        assert fit.residual < 1e-8

    def test_needs_enough_points(self):
        with pytest.raises(ValueError):
            fit_log_polynomial([1, 2], [1.0, 2.0], 2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_log_polynomial([1, 2, 3], [1.0, 2.0], 1)

    def test_per_input_normalization(self):
        fit = fit_per_input_series(lambda m: (1 << m) * (m + 1), [2, 3, 4, 5], 1)
        assert fit.coefficients == pytest.approx((1.0, 1.0), abs=1e-9)


class TestPaperCoefficients:
    def test_bnb_switch_cubic(self):
        """Fitting the constructed BNB recovers [0, 1/12, 1/4, 1/6]."""
        fit = bnb_switch_scaling(range(2, 12))
        assert fit.residual < 1e-6
        assert fit.coefficients[3] == pytest.approx(1 / 6, abs=1e-6)
        assert fit.coefficients[2] == pytest.approx(1 / 4, abs=1e-6)
        assert fit.coefficients[1] == pytest.approx(1 / 12, abs=1e-5)
        assert fit.coefficients[0] == pytest.approx(0.0, abs=1e-5)

    def test_batcher_switch_cubic(self):
        """Leading 1/4 with the (N-1)/N wrinkle bounded by the residual."""
        fit = batcher_switch_scaling(range(2, 12))
        assert fit.coefficients[3] == pytest.approx(1 / 4, abs=1e-2)
        assert fit.residual < 1.0

    def test_bnb_delay_cubic(self):
        """Measured delays fit 1/3 m^3 + 3/2 m^2 - 5/6 m exactly."""
        fit = bnb_delay_scaling(range(2, 12))
        assert fit.residual < 1e-6
        assert fit.coefficients[3] == pytest.approx(1 / 3, abs=1e-6)
        assert fit.coefficients[2] == pytest.approx(3 / 2, abs=1e-5)
        assert fit.coefficients[1] == pytest.approx(-5 / 6, abs=1e-4)

    def test_batcher_delay_cubic(self):
        """Measured delays fit 1/2 m^3 + m^2 + 1/2 m exactly."""
        fit = batcher_delay_scaling(range(2, 12))
        assert fit.residual < 1e-6
        assert fit.coefficients[3] == pytest.approx(1 / 2, abs=1e-6)
        assert fit.coefficients[2] == pytest.approx(1.0, abs=1e-5)

    def test_leading_ratio_from_fits(self):
        """The 2/3 delay claim, derived purely from measured data."""
        bnb = bnb_delay_scaling(range(2, 12))
        batcher = batcher_delay_scaling(range(2, 12))
        assert bnb.leading / batcher.leading == pytest.approx(2 / 3, abs=1e-6)
