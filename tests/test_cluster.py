"""The cluster tier: shard map, health, drain/rejoin, failover.

Unit tests pin the pure pieces (shard arithmetic, the health state
machine, the map document); the wire tests pin the cluster op family
and the two serving-stack satellites (drain-time admission, the stable
``gateway-disconnected`` slug); the end-to-end tests boot real
multi-node clusters over loopback TCP and exercise kill-mid-run
failover and the drain/rejoin rolling restart.
"""

import asyncio

import numpy as np
import pytest

from repro.client import GatewayClient
from repro.cluster import (
    ClusterClient,
    ClusterRouter,
    LocalNode,
    NodeHealth,
    NodeSpec,
    NodeSupervisor,
    ShardMap,
    run_soak,
)
from repro.exceptions import (
    AdmissionRejectedError,
    ClusterError,
    GatewayDisconnectedError,
    GatewayRequestError,
    InputError,
)
from repro.server import AsyncGateway, GatewayConfig, GatewayServer

pytestmark = pytest.mark.asyncio_suite


def make_map(nodes=3, node_n=8):
    return ShardMap.initial(
        {f"node-{k}": ("127.0.0.1", 9000 + k) for k in range(nodes)},
        node_n,
    )


async def start_stack(m=3, planes=1, capacity=8, node_id=None):
    gateway = await AsyncGateway(
        GatewayConfig(
            m=m, planes=planes, queue_capacity=capacity, node_id=node_id
        )
    ).start()
    server = await GatewayServer(gateway).start()
    return gateway, server


def make_cluster(nodes=3, m=3, **supervisor_kwargs):
    supervisor_kwargs.setdefault("poll_interval", 0.05)
    supervisor_kwargs.setdefault("failure_threshold", 2)
    specs = [
        NodeSpec(node_id=f"node-{k}", m=m, queue_capacity=64)
        for k in range(nodes)
    ]
    supervisor = NodeSupervisor(
        [LocalNode(spec) for spec in specs], **supervisor_kwargs
    )
    return ClusterRouter(supervisor)


class TestShardMap:
    def test_initial_layout_and_locate(self):
        shard_map = make_map(nodes=3, node_n=8)
        assert shard_map.n_global == 24
        assert shard_map.version == 1
        assert shard_map.serving_nodes() == ["node-0", "node-1", "node-2"]
        assert shard_map.locate(0) == ("node-0", 0)
        assert shard_map.locate(7) == ("node-0", 7)
        assert shard_map.locate(8) == ("node-1", 0)
        assert shard_map.locate(23) == ("node-2", 7)
        with pytest.raises(InputError):
            shard_map.locate(24)
        with pytest.raises(InputError):
            shard_map.locate(-1)

    def test_locate_batch_groups_match_scalar_locate(self):
        shard_map = make_map(nodes=3, node_n=8)
        dests = np.array([0, 8, 16, 7, 9, 23, 1], dtype=np.int64)
        groups = shard_map.locate_batch(dests)
        seen = np.zeros(dests.size, dtype=bool)
        for node_id, (positions, local_dests) in groups.items():
            for position, local in zip(positions, local_dests):
                expected_node, expected_local = shard_map.locate(
                    int(dests[position])
                )
                assert expected_node == node_id
                assert expected_local == int(local)
                seen[position] = True
        assert seen.all()

    def test_reassign_spreads_round_robin_and_bumps_version(self):
        shard_map = ShardMap.initial(
            {f"node-{k}": ("127.0.0.1", 9000 + k) for k in range(4)}, 4
        )
        twice = shard_map.reassign("node-1").reassign("node-3")
        assert twice.version == 3
        assert "node-1" not in twice.serving_nodes()
        assert "node-3" not in twice.serving_nodes()
        # Every destination still resolves, to a survivor.
        for dest in range(twice.n_global):
            node, local = twice.locate(dest)
            assert node in ("node-0", "node-2")
            assert 0 <= local < 4

    def test_restore_returns_home_after_any_sequence(self):
        shard_map = make_map()
        detour = shard_map.reassign("node-2").reassign("node-1")
        back = detour.restore("node-2").restore("node-1")
        assert [s.node for s in back.shards] == [
            s.node for s in shard_map.shards
        ]
        assert back.version > detour.version

    def test_reassign_with_no_survivors_raises(self):
        lone = ShardMap.initial({"only": ("127.0.0.1", 9000)}, 8)
        with pytest.raises(ClusterError):
            lone.reassign("only")

    def test_doc_round_trip(self):
        shard_map = make_map().reassign("node-0")
        doc = shard_map.to_doc()
        back = ShardMap.from_doc(doc)
        assert back.version == shard_map.version
        assert back.n_global == shard_map.n_global
        assert back.nodes == shard_map.nodes
        assert [s.to_doc() for s in back.shards] == [
            s.to_doc() for s in shard_map.shards
        ]

    def test_malformed_doc_raises_input_error(self):
        with pytest.raises(InputError):
            ShardMap.from_doc({"version": 1})


class TestNodeHealth:
    def test_starting_to_healthy_to_down(self):
        health = NodeHealth("node-0", failure_threshold=3)
        assert health.state == "starting"
        assert health.mark_ok({}) is True
        assert health.state == "healthy"
        assert health.mark_failure("boom") is False
        assert health.mark_failure("boom") is False
        assert health.mark_failure("boom") is True  # the flip, exactly once
        assert health.state == "down"
        assert health.mark_failure("boom") is False

    def test_success_resets_the_streak(self):
        health = NodeHealth("node-0", failure_threshold=2)
        health.mark_ok()
        health.mark_failure("x")
        health.mark_ok()
        assert health.mark_failure("x") is False
        assert health.state == "healthy"

    def test_draining_and_rejoin(self):
        health = NodeHealth("node-0")
        health.mark_ok()
        health.mark_draining()
        assert health.state == "draining"
        assert health.alive
        # A poll showing draining=False flips it back to healthy.
        health.mark_ok({"draining": False})
        assert health.state == "healthy"


class TestDrainAdmission:
    """Satellite: a draining gateway refuses new words, serves old ones."""

    def test_drain_rejects_new_sends_while_inflight_completes(
        self, run_async
    ):
        async def scenario():
            gateway = await AsyncGateway(
                GatewayConfig(m=3, queue_capacity=64)
            ).start()
            try:
                batch_task = asyncio.ensure_future(
                    gateway.send_batch(np.arange(512) % 8)
                )
                while gateway.voqs.total == 0:
                    await asyncio.sleep(0)
                backlog = gateway.drain()
                assert backlog["queued"] + backlog["in_flight"] > 0
                assert gateway.draining
                with pytest.raises(AdmissionRejectedError) as rejected:
                    await gateway.send(3)
                assert rejected.value.retry_after_cycles >= 1
                burst = await gateway.send_batch([1, 2, 3])
                assert burst.delivered == 0
                assert (burst.retry_after >= 1).all()
                # Everything admitted before the drain still lands.
                batch = await batch_task
                assert batch.delivered == 512
                stats = gateway.stats()
                assert stats["draining"] is True
                gateway.rejoin()
                receipt = await gateway.send(3)
                assert receipt.destination == 3
            finally:
                await gateway.stop()

        run_async(scenario())

    def test_drain_rejects_over_the_wire_with_hints(self, run_async):
        async def scenario():
            gateway, server = await start_stack(m=3, capacity=8)
            try:
                async with GatewayClient(
                    "127.0.0.1", server.port
                ) as client:
                    drained = await client.drain()
                    assert drained["draining"] is True
                    with pytest.raises(GatewayRequestError) as rejected:
                        await client.send(2)
                    assert rejected.value.slug == "admission-rejected"
                    assert rejected.value.retry_after_cycles >= 1
                    burst = await client.send_batch([0, 1, 2])
                    assert burst["delivered"] == 0
                    assert (burst["retry_after"] >= 1).all()
                    rejoined = await client.rejoin()
                    assert rejoined["draining"] is False
                    receipt = await client.send(2)
                    assert receipt["dest"] == 2
            finally:
                await server.stop()
                await gateway.stop()

        run_async(scenario())


class TestDisconnectSlug:
    """Satellite: pending requests fail with ``gateway-disconnected``."""

    def test_pending_request_fails_with_stable_error(self, run_async):
        async def scenario():
            gateway, server = await start_stack(m=3, capacity=4096)
            client = await GatewayClient("127.0.0.1", server.port).connect()
            try:
                # One destination, thousands of words: the queue drains
                # one word per cycle, so this request is pending for
                # many cycles — long enough to yank the server.
                batch_task = asyncio.ensure_future(
                    client.send_batch(np.zeros(4096, dtype=np.int64))
                )
                while gateway.voqs.total == 0:
                    await asyncio.sleep(0)
                await server.stop()
                with pytest.raises(GatewayDisconnectedError) as failed:
                    await batch_task
                assert failed.value.slug == "gateway-disconnected"
                assert isinstance(failed.value, ConnectionError)
                # The client stays dead with the same stable error.
                with pytest.raises(GatewayDisconnectedError):
                    await client.ping()
            finally:
                await client.aclose()
                await gateway.stop(drain=False)

        run_async(scenario())


class TestNodeIdentity:
    """Satellite: node_id + uptime in stats and on exported metrics."""

    def test_stats_carry_node_id_uptime_draining(self, run_async):
        async def scenario():
            gateway, server = await start_stack(m=3, node_id="alpha")
            try:
                async with GatewayClient(
                    "127.0.0.1", server.port
                ) as client:
                    await client.send(1, server_retry=True)
                    stats = (await client.stats())["stats"]
            finally:
                await server.stop()
                await gateway.stop()
            return stats

        stats = run_async(scenario())
        assert stats["node_id"] == "alpha"
        assert stats["uptime_seconds"] > 0
        assert stats["draining"] is False

    def test_default_node_id_is_per_process(self, run_async):
        async def scenario():
            async with AsyncGateway(GatewayConfig(m=3)) as gateway:
                return gateway.node_id

        assert run_async(scenario()).startswith("gw-")

    def test_metrics_exposition_labels_the_node(self, run_async):
        from repro.obs import GatewayInstrumentation, Registry

        async def scenario():
            async with AsyncGateway(
                GatewayConfig(m=3, node_id="alpha")
            ) as gateway:
                instrumentation = GatewayInstrumentation(
                    gateway, registry=Registry()
                ).attach()
                await gateway.send_with_retry(1)
                return instrumentation.render_prometheus()

        text = run_async(scenario())
        assert 'repro_node_info{node_id="alpha"} 1' in text
        assert 'repro_node_uptime_seconds{node_id="alpha"}' in text


class TestClusterOps:
    def test_hello_advertises_cluster_feature(self, run_async):
        async def scenario():
            gateway, server = await start_stack()
            try:
                async with GatewayClient(
                    "127.0.0.1", server.port
                ) as client:
                    return client.features
            finally:
                await server.stop()
                await gateway.stop()

        assert "cluster" in run_async(scenario())

    def test_shard_map_install_fetch_and_version_precedence(
        self, run_async
    ):
        doc_v2 = make_map().reassign("node-0").to_doc()
        doc_v1 = make_map().to_doc()

        async def scenario():
            gateway, server = await start_stack()
            try:
                async with GatewayClient(
                    "127.0.0.1", server.port
                ) as client:
                    empty = await client.shard_map()
                    first = await client.shard_map(doc_v2)
                    stale = await client.shard_map(doc_v1)
                    fetched = await client.shard_map()
            finally:
                await server.stop()
                await gateway.stop()
            return empty, first, stale, fetched

        empty, first, stale, fetched = run_async(scenario())
        assert empty["map"] is None
        assert first["installed"] is True
        # An older version must not clobber the newer one.
        assert stale["installed"] is False
        assert stale["map"]["version"] == 2
        assert fetched["map"]["version"] == 2

    def test_shard_map_rejects_malformed_documents(self, run_async):
        async def scenario():
            gateway, server = await start_stack()
            try:
                async with GatewayClient(
                    "127.0.0.1", server.port
                ) as client:
                    failures = []
                    for bad in ([1, 2], {"nodes": {}}):
                        with pytest.raises(GatewayRequestError) as error:
                            await client.shard_map(bad)
                        failures.append(error.value.slug)
            finally:
                await server.stop()
                await gateway.stop()
            return failures

        assert run_async(scenario()) == ["bad-request", "bad-request"]


class TestClusterEndToEnd:
    def test_routes_by_destination_shard(self, run_async):
        async def scenario():
            async with make_cluster(nodes=3, m=3) as router:
                seeds = list(router.supervisor.addresses.values())
                async with ClusterClient(seeds) as client:
                    assert client.n_global == 24
                    served = []
                    for dest in (0, 8, 16, 23):
                        response = await client.send(dest, payload=dest)
                        served.append(
                            (
                                response["node_id"],
                                response["local_dest"],
                            )
                        )
                    batch = await client.send_batch(
                        np.arange(24, dtype=np.int64)
                    )
            return served, batch

        served, batch = run_async(scenario())
        assert served == [
            ("node-0", 0),
            ("node-1", 0),
            ("node-2", 0),
            ("node-2", 7),
        ]
        assert batch["delivered"] == 24
        assert set(batch["nodes"]) == {"node-0", "node-1", "node-2"}
        assert all(count == 8 for count in batch["nodes"].values())

    def test_kill_reshards_and_keeps_delivering(self, run_async):
        async def scenario():
            async with make_cluster(nodes=3, m=3) as router:
                seeds = list(router.supervisor.addresses.values())
                async with ClusterClient(seeds) as client:
                    before = await client.send_batch(
                        np.arange(24, dtype=np.int64)
                    )
                    await router.kill_node("node-1")
                    # Destinations of the dead node's shard still land,
                    # on a survivor, under the bumped map.
                    after = await client.send_batch(
                        np.arange(8, 16, dtype=np.int64)
                    )
                    assert router.map is not None
                    return (
                        before,
                        after,
                        router.map.version,
                        router.map.serving_nodes(),
                        list(router.events),
                        client.map.version,
                    )

        before, after, version, serving, events, client_version = run_async(
            scenario()
        )
        assert before["delivered"] == 24
        assert after["delivered"] == 8
        assert "node-1" not in after["nodes"]
        assert version == 2
        assert client_version == 2
        assert serving == ["node-0", "node-2"]
        assert [event["event"] for event in events] == [
            "start",
            "node-down",
        ]

    def test_health_loop_detects_silent_death(self, run_async):
        async def scenario():
            async with make_cluster(
                nodes=3, m=3, poll_interval=0.02
            ) as router:
                # Kill the node behind the supervisor's back: only the
                # health loop can notice this one.
                await router.supervisor.nodes["node-2"].kill()
                deadline = asyncio.get_running_loop().time() + 10
                assert router.map is not None
                while router.map.version == 1:
                    if asyncio.get_running_loop().time() > deadline:
                        raise AssertionError(
                            "health loop never flipped the dead node"
                        )
                    await asyncio.sleep(0.02)
                return (
                    router.map.serving_nodes(),
                    router.supervisor.health["node-2"].state,
                )

        serving, state = run_async(scenario())
        assert serving == ["node-0", "node-1"]
        assert state == "down"

    def test_rolling_restart_drain_then_rejoin(self, run_async):
        async def scenario():
            async with make_cluster(nodes=3, m=3) as router:
                seeds = list(router.supervisor.addresses.values())
                async with ClusterClient(seeds) as client:
                    drained = await router.drain_node("node-0")
                    assert drained["draining"] is True
                    await client.refresh_map()
                    detoured = await client.send(0, payload="detour")
                    rejoined = await router.rejoin_node("node-0")
                    assert rejoined["draining"] is False
                    await client.refresh_map()
                    restored = await client.send(0, payload="home")
                    assert router.map is not None
                    return (
                        detoured["node_id"],
                        restored["node_id"],
                        [s.node for s in router.map.shards],
                        [s.home for s in router.map.shards],
                    )

        detour_node, home_node, nodes, homes = run_async(scenario())
        assert detour_node != "node-0"
        assert home_node == "node-0"
        assert nodes == homes  # the layout converged back

    def test_soak_kill_one_node_full_delivery(self, run_async):
        report = run_async(
            run_soak(
                nodes=3,
                m=3,
                words=3000,
                burst=512,
                in_flight=2,
                kill=True,
            ),
            timeout=120,
        )
        assert report["delivered_words"] == 3000
        assert report["delivery_rate"] == 1.0
        assert report["misdeliveries"] == 0
        assert report["killed_node"] == "node-2"
        assert report["node_states"]["node-2"] == "down"
        assert report["map_version"] == 2

    def test_cluster_client_needs_a_running_router(self, run_async):
        async def scenario():
            gateway, server = await start_stack()
            try:
                with pytest.raises(ClusterError):
                    await ClusterClient(
                        [("127.0.0.1", server.port)]
                    ).connect()
            finally:
                await server.stop()
                await gateway.stop()

        run_async(scenario())


class TestClusterCli:
    def test_cluster_smoke_command(self, capsys):
        from repro.cli import main

        code = main(
            [
                "cluster",
                "8",
                "--nodes",
                "2",
                "--smoke",
                "600",
                "--kill",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "600/600 words delivered" in out
        assert "killed node-1" in out

    def test_cluster_rejects_single_node(self, capsys):
        from repro.cli import main

        assert main(["cluster", "8", "--nodes", "1", "--smoke", "10"]) == 2
        assert "at least 2 nodes" in capsys.readouterr().err

    def test_serve_node_id_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "8", "--node-id", "alpha"]
        )
        assert args.node_id == "alpha"
