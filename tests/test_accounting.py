"""Hardware accounting vs closed forms (the Table 1 reconciliation)."""

import pytest

from repro.analysis.complexity import (
    batcher_function_slices,
    batcher_switch_slices,
    bnb_function_nodes,
    bnb_switch_slices,
    koppelman_adder_slices,
    koppelman_function_slices,
    koppelman_switch_slices,
)
from repro.hardware import (
    CostModel,
    DEFAULT_COST_MODEL,
    batcher_inventory,
    bnb_inventory,
    koppelman_inventory,
    table1_rows,
)


class TestInventories:
    @pytest.mark.parametrize("m", [1, 3, 5, 8])
    @pytest.mark.parametrize("w", [0, 8])
    def test_bnb_matches_eq6(self, m, w):
        inventory = bnb_inventory(m, w)
        n = 1 << m
        assert inventory.switch_slices == bnb_switch_slices(n, w)
        assert inventory.function_units == bnb_function_nodes(n)
        assert inventory.adder_slices == 0

    @pytest.mark.parametrize("m", [1, 3, 5, 8])
    @pytest.mark.parametrize("w", [0, 8])
    def test_batcher_matches_eq11(self, m, w):
        inventory = batcher_inventory(m, w)
        n = 1 << m
        assert inventory.switch_slices == batcher_switch_slices(n, w)
        assert inventory.function_units == batcher_function_slices(n)

    @pytest.mark.parametrize("m", [3, 6])
    def test_koppelman_matches_table1(self, m):
        inventory = koppelman_inventory(m)
        n = 1 << m
        assert inventory.switch_slices == koppelman_switch_slices(n)
        assert inventory.function_units == koppelman_function_slices(n)
        assert inventory.adder_slices == koppelman_adder_slices(n)

    def test_table1_rows_order(self):
        rows = table1_rows(5)
        assert [r.network for r in rows] == [
            "Batcher",
            "Koppelman SRPN",
            "BNB (this paper)",
        ]

    def test_as_row_keys(self):
        row = bnb_inventory(3).as_row()
        assert set(row) == {
            "network",
            "N",
            "w",
            "2x2 switches",
            "function units",
            "adder slices",
        }


class TestCostModel:
    def test_default_unit_costs(self):
        inventory = bnb_inventory(4)
        assert inventory.total_cost(DEFAULT_COST_MODEL) == (
            inventory.switch_slices + inventory.function_units
        )

    def test_weighting(self):
        inventory = koppelman_inventory(4)
        model = CostModel(c_sw=2.0, c_fn=0.0, c_adder=0.5).validate()
        assert inventory.total_cost(model) == (
            2.0 * inventory.switch_slices + 0.5 * inventory.adder_slices
        )

    def test_validate_rejects_negative(self):
        with pytest.raises(ValueError):
            CostModel(c_sw=-1).validate()


class TestHeadlineClaim:
    def test_one_third_hardware_asymptotically(self):
        """Abstract: 'the network needs about one third of the hardware
        of the Batcher's network ... by the highest order term
        comparison'.  The ratio of the m^3 coefficients is
        (1/6) / (1/4 + 1/4) = 1/3."""
        # Constructed inventories at a practical size agree with the
        # closed-form ratio...
        from repro.analysis.complexity import hardware_leading_ratio

        m = 12
        bnb = bnb_inventory(m)
        batcher = batcher_inventory(m)
        ratio = (bnb.switch_slices + bnb.function_units) / (
            batcher.switch_slices + batcher.function_units
        )
        assert ratio == pytest.approx(hardware_leading_ratio(1 << m))
        # ...and the closed form converges to 1/3 (checked symbolically
        # at an astronomically large size — convergence is O(1/log N)).
        assert abs(hardware_leading_ratio(1 << 200) - 1 / 3) < 0.01
