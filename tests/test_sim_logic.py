"""Event-driven gate simulation vs levelized evaluation and timing."""

import itertools

import pytest

from repro.hardware import (
    GateType,
    Netlist,
    build_bsn_netlist,
    build_function_node,
    build_splitter_netlist,
)
from repro.sim import GateLevelSimulator, Probe, Signal, SignalBus, UNIT_DELAYS, WaveformRecorder


class TestSignals:
    def test_set_notifies_on_change_only(self):
        signal = Signal("s")
        seen = []
        signal.listen(lambda s: seen.append(s.value))
        assert signal.set(1, 0.0)
        assert not signal.set(1, 1.0)
        assert signal.set(0, 2.0)
        assert seen == [1, 0]

    def test_bus(self):
        bus = SignalBus("b", 3)
        bus.drive([1, 0, 1], 0.0)
        assert bus.values() == [1, 0, 1]
        assert bus.settled()
        with pytest.raises(ValueError):
            bus.drive([1, 0], 1.0)
        with pytest.raises(ValueError):
            SignalBus("x", 0)


class TestGateLevelSimulator:
    def test_function_node_settles_correctly(self):
        netlist = build_function_node()
        sim = GateLevelSimulator(netlist)
        for x1, x2, z_down in itertools.product([0, 1], repeat=3):
            result = sim.run({"x1": x1, "x2": x2, "z_down": z_down})
            assert result.outputs == netlist.evaluate(
                {"x1": x1, "x2": x2, "z_down": z_down}
            )

    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_splitter_agrees_with_levelized(self, p):
        netlist = build_splitter_netlist(p)
        sim = GateLevelSimulator(netlist)
        n = 1 << p
        cases = 0
        for bits in itertools.product([0, 1], repeat=n):
            if sum(bits) % 2:
                continue
            values = {f"s[{j}]": bits[j] for j in range(n)}
            assert sim.run(values).outputs == netlist.evaluate(values)
            cases += 1
            if cases >= 20:
                break

    def test_settle_time_bounded_by_weighted_depth(self):
        netlist = build_bsn_netlist(3)
        sim = GateLevelSimulator(netlist)
        result = sim.run({f"s[{j}]": (j * 3 + 1) % 2 for j in range(8)})
        assert result.settle_time <= netlist.weighted_depth(UNIT_DELAYS)
        assert result.event_count > 0

    def test_custom_delays_scale_settle_time(self):
        netlist = build_function_node()
        slow = GateLevelSimulator(netlist, delays={g: 10.0 for g in UNIT_DELAYS})
        fast = GateLevelSimulator(netlist)
        inputs = {"x1": 1, "x2": 0, "z_down": 1}
        assert slow.run(inputs).settle_time == 10 * fast.run(inputs).settle_time

    def test_missing_inputs_rejected(self):
        sim = GateLevelSimulator(build_function_node())
        with pytest.raises(ValueError):
            sim.run({"x1": 1})

    def test_constant_netlist(self):
        netlist = Netlist()
        one = netlist.add_gate(GateType.CONST1, ())
        netlist.mark_output("y", one)
        result = GateLevelSimulator(netlist).run({})
        assert result.outputs == {"y": 1}


class TestMonitors:
    def test_probe_records_transitions(self):
        signal = Signal("s")
        probe = Probe(signal)
        signal.set(1, 1.0)
        signal.set(0, 2.0)
        assert probe.transition_count == 2
        assert probe.final_value() == 0
        assert probe.settle_time() == 2.0

    def test_waveform_render(self):
        recorder = WaveformRecorder()
        signal = Signal("clk")
        recorder.watch("clk", signal)
        signal.set(0, 0.0)
        signal.set(1, 2.0)
        rendered = recorder.render()
        assert "clk" in rendered
        assert recorder.settle_time() == 2.0

    def test_empty_recorder(self):
        assert "no signals" in WaveformRecorder().render()
