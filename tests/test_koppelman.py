"""Tests for the Koppelman-Oruc SRPN functional model."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.baselines import KoppelmanSRPN, ranking_circuit_ranks
from repro.baselines.koppelman import prefix_popcounts
from repro.exceptions import NotAPermutationError
from repro.permutations import Permutation, random_permutation


class TestRankingCircuit:
    def test_prefix_popcounts_basic(self):
        assert prefix_popcounts([1, 0, 1, 1]) == [0, 1, 1, 2]

    @given(st.lists(st.integers(0, 1), min_size=16, max_size=16))
    def test_prefix_popcounts_property(self, bits):
        prefixes = prefix_popcounts(bits)
        running = 0
        for j, bit in enumerate(bits):
            assert prefixes[j] == running
            running += bit

    def test_requires_power_of_two(self):
        with pytest.raises(Exception):
            prefix_popcounts([1, 0, 1])

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            prefix_popcounts([0, 1, 2, 0])

    def test_ranks_pair(self):
        zeros, ones = ranking_circuit_ranks([0, 1, 1, 0])
        assert ones == [0, 0, 1, 2]
        assert zeros == [0, 1, 1, 1]


class TestRouting:
    def test_exhaustive_n4(self):
        net = KoppelmanSRPN(2)
        for p in itertools.permutations(range(4)):
            assert net.route_permutation(Permutation(p)), p

    def test_sampled_n8_to_n64(self):
        for m in (3, 4, 5, 6):
            net = KoppelmanSRPN(m)
            for seed in range(25):
                assert net.route_permutation(random_permutation(1 << m, rng=seed))

    def test_rejects_non_permutation(self):
        with pytest.raises(NotAPermutationError):
            KoppelmanSRPN(2).route([0, 1, 1, 2])

    def test_check_disable_still_routes_permutations(self):
        net = KoppelmanSRPN(3, check_inputs=False)
        assert net.route_permutation(random_permutation(8, rng=1))

    def test_validation(self):
        with pytest.raises(ValueError):
            KoppelmanSRPN(0)
        with pytest.raises(ValueError):
            KoppelmanSRPN(3, w=-1)
        with pytest.raises(ValueError):
            KoppelmanSRPN(2).route([0, 1])


class TestPublishedComplexities:
    def test_table1_row(self):
        net = KoppelmanSRPN(6)
        n, m = 64, 6
        assert net.switch_slice_count == n * m**3 // 4
        assert net.function_slice_count == n * m**2 // 2
        assert net.adder_slice_count == n * m**2

    def test_table2_row(self):
        net = KoppelmanSRPN(5)
        m = 5
        expected = 2 * m**3 / 3 - m**2 + m / 3 + 1
        assert net.propagation_delay() == pytest.approx(expected)

    def test_section_5_3_ordering(self):
        """The relative ordering the paper's Section 5.3 narrates:
        Koppelman is slower than BNB, and its switch count matches
        Batcher's at leading order (both are N/4 log^3 N) while BNB's
        sits at 2/3 of that."""
        from repro.analysis.complexity import (
            bnb_delay,
            bnb_switch_slices,
            batcher_switch_slices,
        )

        # Delay: the printed polynomials actually cross near m=7 — the
        # Koppelman row's negative m^2 term beats BNB's +3/2 m^2 at
        # small N, so the BNB advantage is asymptotic.
        assert KoppelmanSRPN(6).propagation_delay() < bnb_delay(1 << 6)
        for m in (8, 10, 14):
            n = 1 << m
            net = KoppelmanSRPN(m)
            assert net.propagation_delay() > bnb_delay(n)
            # Leading-order agreement with Batcher's switch count.
            ratio = net.switch_slice_count / batcher_switch_slices(n)
            assert 0.9 < ratio < 1.3, (m, ratio)
            # BNB's switch count trends to 2/3 of Koppelman's.
            bnb_ratio = bnb_switch_slices(n) / net.switch_slice_count
            assert 0.6 < bnb_ratio < 0.95, (m, bnb_ratio)
