"""Tests for the ASCII figure renderers and the experiments report."""

import pytest

from repro.core import BNBNetwork, Word
from repro.permutations import random_permutation
from repro.viz import (
    experiments_report,
    render_bnb_profile,
    render_function_node,
    render_gbn,
    render_routing_trace,
    render_splitter,
)


class TestFigureRenderers:
    def test_fig1_gbn(self):
        text = render_gbn(3)
        assert "stage-0: 1 x SB(3)" in text
        assert "stage-1: 2 x SB(2)" in text
        assert "stage-2: 4 x SB(1)" in text
        assert "U_3^3" in text

    def test_fig3_profile(self):
        text = render_bnb_profile(3)
        assert "NB(0,0)" in text
        assert "NB(2,3)" in text
        assert "BSN(1,1)" in text

    def test_fig4_splitter_static(self):
        text = render_splitter(3)
        assert "7 function nodes" in text
        assert "4 x sw(1)" in text

    def test_fig4_splitter_live(self):
        text = render_splitter(3, [1, 0, 0, 1, 1, 0, 1, 0])
        assert "flags" in text
        assert "outputs" in text

    def test_fig4_sp1(self):
        text = render_splitter(1, [1, 0])
        assert "wiring" in text
        assert "[0, 1]" in text

    def test_fig5_function_node(self):
        text = render_function_node()
        assert "XOR" in text
        assert "z_u == 1 -> forward" in text

    def test_routing_trace(self):
        net = BNBNetwork(3)
        pi = random_permutation(8, rng=1)
        words = [Word(address=pi(j), payload=j) for j in range(8)]
        _out, record = net.route(words, record=True)
        assert record is not None
        text = render_routing_trace(net, record, words)
        assert "[ok]" in text
        assert "MISROUTED" not in text


class TestMultistageRouting:
    def test_renders_benes_pass(self):
        from repro.baselines import BenesNetwork
        from repro.permutations import random_permutation
        from repro.viz import render_multistage_routing

        benes = BenesNetwork(3)
        pi = random_permutation(8, rng=6)
        controls = benes.controls_for(pi)
        text = render_multistage_routing(benes.fabric, controls)
        assert "benes" in text
        assert text.count("s") >= 5  # one line per stage
        assert " X " in text or " = " in text
        # Final line shows the realized arrangement.
        last = text.splitlines()[-1]
        assert all(str(v) in text for v in range(8))

    def test_render_baseline_with_straight_controls(self):
        from repro.topology import baseline_network
        from repro.viz import render_multistage_routing

        net = baseline_network(4)
        text = render_multistage_routing(net, net.empty_controls())
        assert "baseline" in text
        assert " = " in text and " X " not in text


class TestExperimentsReport:
    def test_report_sections(self):
        report = experiments_report(max_m=3, w=4)
        assert "paper vs measured" in report
        assert "Eq.6" in report
        assert "Theorem 2" in report
        assert "Table 1" in report
        assert "Table 2" in report

    def test_report_counts_agree_inline(self):
        """The report embeds built-vs-formula columns; spot-check one row."""
        report = experiments_report(max_m=3)
        assert "| 8 | 56 | 56 | 19 | 19 | 19 | 19 |" in report
