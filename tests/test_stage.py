"""Unit tests for switch columns."""

import pytest

from repro.topology import SwitchColumn, SwitchState


class TestApply:
    def test_straight(self):
        column = SwitchColumn(4)
        assert column.apply(["a", "b", "c", "d"], [0, 0]) == ["a", "b", "c", "d"]

    def test_exchange(self):
        column = SwitchColumn(4)
        assert column.apply(["a", "b", "c", "d"], [1, 0]) == ["b", "a", "c", "d"]

    def test_switch_count(self):
        assert SwitchColumn(8).switch_count == 4

    def test_validation(self):
        column = SwitchColumn(4)
        with pytest.raises(ValueError):
            column.apply(["a", "b"], [0, 0])
        with pytest.raises(ValueError):
            column.apply(["a", "b", "c", "d"], [0])
        with pytest.raises(ValueError):
            column.apply(["a", "b", "c", "d"], [0, 2])

    def test_output_port(self):
        column = SwitchColumn(4)
        assert column.output_port(0, SwitchState.STRAIGHT) == 0
        assert column.output_port(0, SwitchState.EXCHANGE) == 1
        assert column.output_port(3, SwitchState.EXCHANGE) == 2
        with pytest.raises(ValueError):
            column.output_port(4, 0)
        with pytest.raises(ValueError):
            column.output_port(0, 2)


class TestControlsForDestinations:
    def test_opposite_wants(self):
        column = SwitchColumn(4)
        controls, conflicts = column.controls_for_destinations([0, 1, 1, 0])
        assert conflicts == []
        assert controls == [0, 1]

    def test_conflict_reported(self):
        column = SwitchColumn(2)
        controls, conflicts = column.controls_for_destinations([1, 1])
        assert conflicts == [0]
        # First packet wins: upper input wanting 1 forces exchange.
        assert controls == [1]

    def test_idle_lines(self):
        column = SwitchColumn(4)
        controls, conflicts = column.controls_for_destinations(
            [None, None, 1, None]
        )
        assert conflicts == []
        # Idle pair stays straight; a lone packet gets its wish.
        assert controls[0] == 0
        assert controls[1] == 1  # upper input wants odd port -> exchange

    def test_lone_lower_packet(self):
        column = SwitchColumn(2)
        controls, _ = column.controls_for_destinations([None, 0])
        assert controls == [1]  # lower input wants even port -> exchange

    def test_length_validation(self):
        with pytest.raises(ValueError):
            SwitchColumn(4).controls_for_destinations([0, 1])

    def test_repr_mentions_label(self):
        assert "probe" in repr(SwitchColumn(4, label="probe"))
