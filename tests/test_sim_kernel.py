"""Unit tests for the DES kernel and event queue."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import EventQueue, Simulator


class TestEventQueue:
    def test_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append("c"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["a", "b", "c"]

    def test_fifo_among_equal_times(self):
        queue = EventQueue()
        fired = []
        for name in "abc":
            queue.push(1.0, lambda n=name: fired.append(n))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["a", "b", "c"]

    def test_cancellation(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert queue.pop() is None

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_len(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        assert len(queue) == 1


class TestSimulator:
    def test_relative_scheduling(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        assert sim.run() == 5.0
        assert times == [5.0]

    def test_chained_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, second)

        def second():
            log.append(("second", sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_until_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_runaway_guard(self):
        sim = Simulator()

        def oscillate():
            sim.schedule(1.0, oscillate)

        sim.schedule(0.0, oscillate)
        with pytest.raises(SimulationError, match="oscillating"):
            sim.run(max_events=100)

    def test_reset(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.processed_events == 0
