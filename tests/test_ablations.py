"""Negative experiments: each removed design choice demonstrably fails."""

import itertools

import pytest

from repro.analysis.ablations import (
    bare_baseline_delivery_fraction,
    bit_order_delivery_fraction,
    route_with_bit_order,
    splitter_controls_without_generate,
    unbalance_after_ablated_splitter,
)
from repro.permutations import random_permutation


class TestBitOrderAblation:
    def test_msb_first_is_the_real_network(self):
        """The identity schedule reproduces BNBNetwork exactly."""
        from repro.core import BNBNetwork

        net = BNBNetwork(3)
        for seed in range(20):
            pi = random_permutation(8, rng=seed)
            ablated = route_with_bit_order(3, pi.to_list(), [0, 1, 2])
            reference, _ = net.route(pi.to_list())
            assert ablated == [w.address for w in reference]

    def test_msb_first_delivers_everything(self):
        assert bit_order_delivery_fraction(3, [0, 1, 2], samples=60) == 1.0
        assert bit_order_delivery_fraction(4, [0, 1, 2, 3], samples=30) == 1.0

    def test_lsb_first_fails(self):
        """Sorting LSB-first breaks the radix invariant: almost nothing
        is delivered."""
        fraction = bit_order_delivery_fraction(3, [2, 1, 0], samples=60)
        assert fraction < 0.1

    @pytest.mark.parametrize("order", [(1, 0, 2), (0, 2, 1), (2, 0, 1)])
    def test_every_wrong_order_fails_somewhere(self, order):
        """Each non-identity schedule misroutes at least one permutation
        (exhaustive search over N = 8 stops at the first failure)."""
        for p in itertools.permutations(range(8)):
            if route_with_bit_order(3, list(p), list(order)) != list(range(8)):
                return
        pytest.fail(f"bit order {order} unexpectedly routed all permutations")

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            route_with_bit_order(3, list(range(8)), [0, 0, 1])
        with pytest.raises(ValueError):
            route_with_bit_order(3, list(range(4)), [0, 1, 2])


class TestGenerateRuleAblation:
    def test_balance_breaks(self):
        """Without the generate rule the alternating vector is maximally
        unbalanced: every 1 exits on an odd line."""
        assert unbalance_after_ablated_splitter([0, 1] * 4) == 4

    def test_real_splitter_stays_balanced(self):
        from repro.core import Splitter, splitter_balance

        splitter = Splitter(3)
        out, _ = splitter.route_bits([0, 1] * 4)
        even, odd = splitter_balance(out)
        assert even == odd

    def test_some_inputs_survive_ablation(self):
        """The ablated rule is not *always* wrong (type-1-only inputs
        never needed the arbiter) — which is why the failure had to be
        demonstrated, not assumed."""
        assert unbalance_after_ablated_splitter([0, 0, 1, 1]) == 0

    def test_exhaustive_worst_case(self):
        worst = max(
            unbalance_after_ablated_splitter(list(bits))
            for bits in itertools.product([0, 1], repeat=8)
            if sum(bits) == 4
        )
        assert worst == 4


class TestNestingAblation:
    def test_bare_baseline_collapses(self):
        f8 = bare_baseline_delivery_fraction(3, samples=150, seed=1)
        f16 = bare_baseline_delivery_fraction(4, samples=150, seed=1)
        f32 = bare_baseline_delivery_fraction(5, samples=150, seed=1)
        assert f8 > f16 >= f32
        assert f32 < 0.01

    def test_theoretical_fraction_n8(self):
        """12 switches at N=8: at most 2^12 of 8! permutations pass, i.e.
        about 10%; the sampled figure must be in that ballpark."""
        fraction = bare_baseline_delivery_fraction(3, samples=400, seed=3)
        assert 0.05 < fraction < 0.2
