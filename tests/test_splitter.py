"""Unit and property tests for the splitter sp(p) — Theorem 3."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.core import Splitter, splitter_balance
from repro.exceptions import UnbalancedInputError


def even_parity_vectors(p):
    for bits in itertools.product([0, 1], repeat=1 << p):
        if sum(bits) % 2 == 0:
            yield list(bits)


class TestStructure:
    def test_counts(self):
        sp = Splitter(3)
        assert sp.size == 8
        assert sp.switch_count == 4
        assert sp.function_node_count == 7

    def test_sp1_has_no_nodes(self):
        assert Splitter(1).function_node_count == 0

    def test_rejects_p0(self):
        with pytest.raises(ValueError):
            Splitter(0)


class TestSp1:
    def test_routes_zero_up_one_down(self):
        sp = Splitter(1)
        assert sp.route_bits([0, 1])[0] == [0, 1]
        assert sp.route_bits([1, 0])[0] == [0, 1]

    def test_words_follow(self):
        sp = Splitter(1)
        out, _ = sp.route_words(["hi", "lo"], [1, 0])
        assert out == ["lo", "hi"]


class TestTheorem3:
    """M_e(out) == M_o(out) for every even-weight input (Theorem 3).

    Note the paper prints the condition as ``p <= 2``; the construction
    and proof are clearly for ``p >= 2`` and that is what holds.
    """

    @pytest.mark.parametrize("p", [2, 3])
    def test_exhaustive_even_weight(self, p):
        sp = Splitter(p)
        for bits in even_parity_vectors(p):
            out, _ = sp.route_bits(bits)
            even, odd = splitter_balance(out)
            assert even == odd, bits

    @pytest.mark.parametrize("p", [2, 3])
    def test_output_is_multiset_preserving(self, p):
        sp = Splitter(p)
        for bits in even_parity_vectors(p):
            out, _ = sp.route_bits(bits)
            assert sorted(out) == sorted(bits)

    @given(st.lists(st.integers(0, 1), min_size=16, max_size=16))
    def test_property_p4(self, bits):
        if sum(bits) % 2:
            bits[0] ^= 1
        out, _ = Splitter(4).route_bits(bits)
        even, odd = splitter_balance(out)
        assert even == odd

    def test_unbalanced_rejected(self):
        with pytest.raises(UnbalancedInputError):
            Splitter(2).route_bits([1, 0, 0, 0])

    def test_unbalanced_allowed_when_check_disabled(self):
        sp = Splitter(2, check_balance=False)
        out, _ = sp.route_bits([1, 0, 0, 0])
        assert sorted(out) == [0, 0, 0, 1]


class TestSwitchSetting:
    def test_control_is_input_xor_flag(self):
        sp = Splitter(3)
        bits = [1, 0, 0, 1, 1, 0, 1, 0]
        _out, record = sp.route_bits(bits, record=True)
        assert record is not None
        for t in range(4):
            assert record.controls[t] == bits[2 * t] ^ record.flags[2 * t]

    def test_record_contents(self):
        sp = Splitter(2)
        out, record = sp.route_bits([1, 0, 0, 1], record=True)
        assert record is not None
        assert record.input_bits == [1, 0, 0, 1]
        assert record.output_bits == out
        assert record.arbiter_trace is not None
        assert record.switch_count == 2

    def test_words_follow_key_bits(self):
        """The follower contract: route_words applies exactly the
        controls derived from the key bits."""
        sp = Splitter(2)
        words = ["w0", "w1", "w2", "w3"]
        keys = [1, 0, 0, 1]
        out_words, record = sp.route_words(words, keys, record=True)
        assert record is not None
        expected = []
        for t in range(2):
            pair = [words[2 * t], words[2 * t + 1]]
            if record.controls[t]:
                pair.reverse()
            expected.extend(pair)
        assert out_words == expected

    def test_words_length_validation(self):
        with pytest.raises(ValueError):
            Splitter(2).route_words(["a", "b"], [0, 1, 1, 0])

    def test_input_validation(self):
        sp = Splitter(2)
        with pytest.raises(ValueError):
            sp.route_bits([0, 1])
        with pytest.raises(ValueError):
            sp.route_bits([0, 1, 2, 1])


class TestLemma1:
    """Type-2 pairs: flag 0 routes the 1 to the lower output (OL);
    flag 1 routes the 1 to the upper output (OU)."""

    @pytest.mark.parametrize("p", [2, 3])
    def test_lemma(self, p):
        sp = Splitter(p)
        for bits in even_parity_vectors(p):
            out, record = sp.route_bits(bits, record=True)
            assert record is not None
            for t in range(1 << (p - 1)):
                a, b = bits[2 * t], bits[2 * t + 1]
                if a == b:
                    continue
                flag = record.flags[2 * t]
                one_went_lower = out[2 * t + 1] == 1
                assert one_went_lower == (flag == 0)
