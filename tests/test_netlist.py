"""Unit tests for netlist construction and analysis."""

import pytest

from repro.exceptions import ConfigurationError
from repro.hardware import GateType, Netlist


def xor_of_three():
    """A small 2-level netlist: y = a ^ b ^ c."""
    netlist = Netlist("xor3")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    c = netlist.add_input("c")
    ab = netlist.add_gate(GateType.XOR, (a, b), group="l1")
    y = netlist.add_gate(GateType.XOR, (ab, c), group="l2")
    netlist.mark_output("y", y)
    return netlist


class TestConstruction:
    def test_duplicate_input_name(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(ConfigurationError):
            netlist.add_input("a")

    def test_undriven_net_rejected(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        with pytest.raises(ConfigurationError):
            netlist.add_gate(GateType.AND, (a, 99))

    def test_duplicate_output_name(self):
        netlist = xor_of_three()
        with pytest.raises(ConfigurationError):
            netlist.mark_output("y", netlist.outputs["y"])

    def test_mark_output_requires_driver(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(ConfigurationError):
            netlist.mark_output("y", 42)

    def test_gate_count_excludes_inputs(self):
        assert xor_of_three().gate_count == 2


class TestEvaluation:
    def test_xor3(self):
        netlist = xor_of_three()
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    out = netlist.evaluate({"a": a, "b": b, "c": c})
                    assert out["y"] == a ^ b ^ c

    def test_missing_input(self):
        with pytest.raises(ValueError, match="missing input"):
            xor_of_three().evaluate({"a": 1, "b": 0})

    def test_non_bit_input(self):
        with pytest.raises(ValueError):
            xor_of_three().evaluate({"a": 2, "b": 0, "c": 0})

    def test_constants(self):
        netlist = Netlist()
        one = netlist.add_gate(GateType.CONST1, ())
        netlist.mark_output("y", one)
        assert netlist.evaluate({}) == {"y": 1}


class TestAnalysis:
    def test_levelize(self):
        netlist = xor_of_three()
        levels = netlist.levelize()
        assert max(levels) == 2

    def test_critical_path(self):
        assert xor_of_three().critical_path_length() == 2

    def test_critical_path_requires_outputs(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(ConfigurationError):
            netlist.critical_path_length()

    def test_weighted_depth(self):
        netlist = xor_of_three()
        assert netlist.weighted_depth({GateType.XOR: 2.5}) == 5.0

    def test_census(self):
        netlist = xor_of_three()
        assert netlist.gate_census() == {GateType.XOR: 2}
        assert netlist.group_census() == {"l1": 1, "l2": 1}

    def test_repr(self):
        assert "xor3" in repr(xor_of_three())
