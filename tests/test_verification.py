"""Tests for the generic permutation-delivery verification harness."""

import math

import pytest

from repro.analysis.verification import ROUTERS, verify_router


class TestExhaustive:
    @pytest.mark.parametrize("router", sorted(ROUTERS))
    def test_all_routers_deliver_n4(self, router):
        report = verify_router(router, 4, mode="exhaustive")
        assert report.attempted == math.factorial(4)
        assert report.all_delivered, report.summary()

    def test_auto_mode_picks_exhaustive_small(self):
        report = verify_router("bnb", 4)
        assert report.mode == "exhaustive"

    def test_auto_mode_picks_sampled_large(self):
        report = verify_router("bnb", 16, samples=10)
        assert report.mode == "sampled"
        assert report.attempted == 10


class TestSampled:
    @pytest.mark.parametrize("router", ["bnb", "batcher", "benes", "koppelman"])
    def test_sampled_n32(self, router):
        report = verify_router(router, 32, mode="sampled", samples=15, seed=5)
        assert report.all_delivered, report.summary()

    def test_seed_reproducibility(self):
        a = verify_router("bnb", 16, mode="sampled", samples=5, seed=1)
        b = verify_router("bnb", 16, mode="sampled", samples=5, seed=1)
        assert a.delivered == b.delivered == 5


class TestValidation:
    def test_unknown_router(self):
        with pytest.raises(ValueError, match="unknown router"):
            verify_router("teleporter", 8)

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            verify_router("bnb", 8, mode="psychic")

    def test_summary_format(self):
        report = verify_router("crossbar", 4, mode="exhaustive")
        assert "crossbar" in report.summary()
        assert "24/24" in report.summary()
