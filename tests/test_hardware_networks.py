"""Gate-level BSN / BNB / Batcher networks vs the functional models."""

import itertools

import pytest

from repro.core import BitSorterNetwork, BNBNetwork
from repro.hardware import (
    build_batcher_netlist,
    build_bnb_netlist,
    build_bsn_netlist,
    build_comparator_cell,
)
from repro.permutations import random_permutation


class TestBSNNetlist:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_sorts_all_balanced_vectors(self, k):
        netlist = build_bsn_netlist(k)
        n = 1 << k
        for positions in itertools.combinations(range(n), n // 2):
            bits = [1 if j in positions else 0 for j in range(n)]
            got = netlist.evaluate({f"s[{j}]": bits[j] for j in range(n)})
            assert [got[f"o[{j}]"] for j in range(n)] == [j & 1 for j in range(n)]

    def test_matches_functional_on_unbalanced(self):
        """Even outside Theorem 1's precondition, gate level and
        functional model must make identical (possibly useless)
        decisions."""
        netlist = build_bsn_netlist(2)
        bsn = BitSorterNetwork(2, check_balance=False)
        for bits in itertools.product([0, 1], repeat=4):
            got = netlist.evaluate({f"s[{j}]": bits[j] for j in range(4)})
            expected, _ = bsn.route_bits(list(bits))
            assert [got[f"o[{j}]"] for j in range(4)] == expected, bits

    def test_switch_cell_count(self):
        """sw gates = 2 MUX2 per switch; (n/2)*k switches per slice."""
        netlist = build_bsn_netlist(3)
        assert netlist.group_census()["sw"] == 2 * (8 // 2) * 3


class TestBNBNetlist:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_routes_random_permutations(self, m):
        netlist, ports = build_bnb_netlist(m)
        n = 1 << m
        for seed in range(30):
            pi = random_permutation(n, rng=seed)
            out = netlist.evaluate(ports.input_assignment(pi.to_list()))
            assert ports.decode_outputs(out) == list(range(n)), (m, seed)

    def test_exhaustive_m2(self):
        netlist, ports = build_bnb_netlist(2)
        for p in itertools.permutations(range(4)):
            out = netlist.evaluate(ports.input_assignment(list(p)))
            assert ports.decode_outputs(out) == [0, 1, 2, 3], p

    def test_m4_samples(self):
        netlist, ports = build_bnb_netlist(4)
        for seed in range(10):
            pi = random_permutation(16, rng=seed)
            out = netlist.evaluate(ports.input_assignment(pi.to_list()))
            assert ports.decode_outputs(out) == list(range(16))

    def test_function_node_gates_match_structure(self):
        """fn-group gates = 4 * function_node_count of the functional
        network: the netlist and the object model count identically."""
        for m in (2, 3, 4):
            netlist, _ports = build_bnb_netlist(m)
            expected = BNBNetwork(m).function_node_count
            assert netlist.group_census().get("fn", 0) == 4 * expected

    def test_size_guard(self):
        with pytest.raises(ValueError):
            build_bnb_netlist(7)
        with pytest.raises(ValueError):
            build_bnb_netlist(0)

    def test_port_helpers_validate(self):
        _netlist, ports = build_bnb_netlist(2)
        with pytest.raises(ValueError):
            ports.input_assignment([0, 1])


class TestComparatorCell:
    def test_exhaustive_3bit(self):
        netlist = build_comparator_cell(3)
        for a in range(8):
            for b in range(8):
                values = {}
                for i in range(3):
                    values[f"a[{i}]"] = (a >> (2 - i)) & 1
                    values[f"b[{i}]"] = (b >> (2 - i)) & 1
                got = netlist.evaluate(values)
                got_min = sum(got[f"min[{i}]"] << (2 - i) for i in range(3))
                got_max = sum(got[f"max[{i}]"] << (2 - i) for i in range(3))
                assert (got_min, got_max) == (min(a, b), max(a, b))

    def test_width_validation(self):
        with pytest.raises(ValueError):
            build_comparator_cell(0)


class TestBatcherNetlist:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_sorts_random_permutations(self, m):
        netlist, input_names, output_names = build_batcher_netlist(m)
        n = 1 << m
        for seed in range(20):
            pi = random_permutation(n, rng=seed)
            values = {}
            for j in range(n):
                for b in range(m):
                    values[input_names[j][b]] = (pi(j) >> (m - 1 - b)) & 1
            got = netlist.evaluate(values)
            result = [
                sum(got[output_names[j][b]] << (m - 1 - b) for b in range(m))
                for j in range(n)
            ]
            assert result == list(range(n))

    def test_size_guard(self):
        with pytest.raises(ValueError):
            build_batcher_netlist(5)
