"""Unit tests for interstage connection patterns."""

import pytest
from hypothesis import given, strategies as st

from repro.topology import (
    butterfly_connection,
    compose_connections,
    identity_connection,
    inverse_shuffle_connection,
    invert_connection,
    is_valid_connection,
    perfect_shuffle_connection,
    shuffle_connection,
    unshuffle_connection,
)


class TestValidity:
    def test_all_patterns_are_permutations(self):
        n = 16
        candidates = [
            identity_connection(n),
            perfect_shuffle_connection(n),
            inverse_shuffle_connection(n),
        ]
        candidates += [unshuffle_connection(n, k) for k in range(1, 5)]
        candidates += [shuffle_connection(n, k) for k in range(1, 5)]
        candidates += [butterfly_connection(n, k) for k in range(4)]
        for wiring in candidates:
            assert is_valid_connection(wiring)

    def test_is_valid_rejects(self):
        assert not is_valid_connection([0, 0])
        assert not is_valid_connection([0, 2])
        assert not is_valid_connection([0, "x"])

    def test_power_of_two_required(self):
        with pytest.raises(Exception):
            unshuffle_connection(12, 2)


class TestSemantics:
    def test_identity(self):
        assert identity_connection(4) == [0, 1, 2, 3]

    def test_unshuffle_full_width_splits_parity(self):
        wiring = unshuffle_connection(8, 3)
        # Even outputs land in the upper half in order.
        assert [wiring[j] for j in range(0, 8, 2)] == [0, 1, 2, 3]
        assert [wiring[j] for j in range(1, 8, 2)] == [4, 5, 6, 7]

    def test_unshuffle_partial_width_blocks(self):
        wiring = unshuffle_connection(8, 2)
        # Blocks of 4: high bit untouched.
        for j in range(8):
            assert wiring[j] >> 2 == j >> 2

    def test_perfect_shuffle_interleaves(self):
        wiring = perfect_shuffle_connection(8)
        # First half spreads to even lines.
        assert [wiring[j] for j in range(4)] == [0, 2, 4, 6]

    def test_butterfly_is_involution(self):
        for k in range(4):
            wiring = butterfly_connection(16, k)
            assert compose_connections(wiring, wiring) == identity_connection(16)


class TestAlgebra:
    def test_invert_roundtrip(self):
        wiring = unshuffle_connection(16, 3)
        assert compose_connections(wiring, invert_connection(wiring)) == list(
            range(16)
        )

    def test_shuffle_inverts_unshuffle(self):
        for k in range(1, 5):
            assert shuffle_connection(16, k) == invert_connection(
                unshuffle_connection(16, k)
            )

    def test_compose_order(self):
        first = perfect_shuffle_connection(8)
        second = unshuffle_connection(8, 3)
        composed = compose_connections(first, second)
        for j in range(8):
            assert composed[j] == second[first[j]]

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            compose_connections([0, 1], [0, 1, 2])
