"""DOT export tests."""

import pytest

from repro.topology import baseline_network, omega_network
from repro.viz import arbiter_to_dot, multistage_to_dot


class TestMultistageDot:
    def test_structure(self):
        text = multistage_to_dot(baseline_network(8), title="baseline 8")
        assert text.startswith("digraph multistage {")
        assert text.rstrip().endswith("}")
        assert 'label="baseline 8"' in text
        # 8 in + 8 out terminals, 12 switches.
        assert text.count("shape=plaintext") == 16
        for stage in range(3):
            for t in range(4):
                assert f"s{stage}_{t}" in text

    def test_edge_count(self):
        text = multistage_to_dot(baseline_network(8))
        edges = [l for l in text.splitlines() if "->" in l]
        # in->stage0 (8) + 2 interstage layers (16) + stage2->out (8).
        assert len(edges) == 32

    def test_input_wiring_respected(self):
        text = multistage_to_dot(omega_network(4))
        # Omega's input shuffle: input 1 lands on line 2 -> switch 1.
        assert "in1 -> s0_1;" in text

    def test_quote_escaping(self):
        text = multistage_to_dot(baseline_network(4), title='say "hi"')
        assert r"\"hi\"" in text


class TestArbiterDot:
    def test_tree_shape(self):
        text = arbiter_to_dot(3)
        # 8 plaintext leaves, 7 function nodes.
        assert text.count("shape=plaintext") == 8
        assert sum(1 for l in text.splitlines() if '[label="FN"]' in l) == 7
        edges = [l for l in text.splitlines() if "->" in l]
        # 8 leaf edges + 6 internal edges.
        assert len(edges) == 14

    def test_live_annotation(self):
        text = arbiter_to_dot(2, bits=[1, 0, 0, 1])
        assert "zu=" in text and "zd=" in text
        assert "s(0)\\n=1" in text

    def test_requires_p2(self):
        with pytest.raises(ValueError):
            arbiter_to_dot(1)
