"""Regression pins for the fault models, exhaustive over coordinates.

The :mod:`repro.faults.adaptive` docstring makes empirical claims —
frozen blasts are even (a displaced *pair*), adaptive cascades can
exceed one pair but stay contained, and every fault is exposable.
These tests pin those claims for every switch coordinate at m = 2 and
m = 3, both stuck values, over a fixed seed set, so a modelling change
that shifts the physics fails loudly here.
"""

import pytest

from repro.core import BNBNetwork, Word
from repro.faults import (
    enumerate_switch_coordinates,
    extract_controls,
    inject_stuck_control,
    misrouted_outputs,
    replay_controls,
    route_with_stuck_switch,
)
from repro.permutations import random_permutation

SEEDS = range(10)

#: Worst adaptive blast radius observed over SEEDS; a cascade can
#: displace at most all N words (m=2 reaches N, m=3 reaches N-1).
CASCADE_BOUND = {2: 4, 3: 7}


def fault_cases(m):
    return [
        (coordinate, value)
        for coordinate in enumerate_switch_coordinates(m)
        for value in (0, 1)
    ]


def case_id(case):
    coordinate, value = case
    return (
        f"{coordinate.main_stage}{coordinate.nested}"
        f"{coordinate.nested_stage}{coordinate.box}{coordinate.switch}s{value}"
    )


ALL_CASES = [(m, c, v) for m in (2, 3) for c, v in fault_cases(m)]
ALL_IDS = [f"m{m}-{case_id((c, v))}" for m, c, v in ALL_CASES]


def words_for(m, seed):
    pi = random_permutation(1 << m, rng=seed)
    return [Word(address=pi(j), payload=j) for j in range(1 << m)]


@pytest.mark.parametrize("m, coordinate, value", ALL_CASES, ids=ALL_IDS)
def test_frozen_blast_is_even_and_tied_to_activation(m, coordinate, value):
    """Frozen replay: one flipped switch displaces exactly one pair,
    and only when the healthy control disagrees with the stuck value."""
    network = BNBNetwork(m)
    key = (
        coordinate.main_stage,
        coordinate.nested,
        coordinate.nested_stage,
        coordinate.box,
    )
    for seed in SEEDS:
        words = words_for(m, seed)
        _outputs, record = network.route(words, record=True)
        table = extract_controls(record)
        outputs = replay_controls(
            m, words, inject_stuck_control(table, coordinate, value)
        )
        blast = len(misrouted_outputs(outputs))
        activated = table[key][coordinate.switch] != value
        assert blast == (2 if activated else 0)


@pytest.mark.parametrize("m, coordinate, value", ALL_CASES, ids=ALL_IDS)
def test_adaptive_cascade_is_contained(m, coordinate, value):
    """Adaptive model: downstream arbiters re-decide, so a cascade can
    displace more than one pair — but never more than the pinned bound,
    and every word still carries its own address (detection-complete:
    the output-side check sees exactly the displaced words)."""
    n = 1 << m
    for seed in SEEDS:
        words = words_for(m, seed)
        outputs = route_with_stuck_switch(m, words, coordinate, value)
        assert len(outputs) == n
        assert sorted(word.address for word in outputs) == list(range(n))
        blast = len(misrouted_outputs(outputs))
        assert blast <= CASCADE_BOUND[m]


@pytest.mark.parametrize("m", [2, 3])
def test_cascades_exceed_the_frozen_pair(m):
    """At least one fault cascades past the frozen model's single pair
    on the fixed seed set — the docstring's 'cascade' claim is real."""
    worst = 0
    for coordinate, value in fault_cases(m):
        for seed in SEEDS:
            outputs = route_with_stuck_switch(
                m, words_for(m, seed), coordinate, value
            )
            worst = max(worst, len(misrouted_outputs(outputs)))
    assert worst > 2
    assert worst == CASCADE_BOUND[m]  # pin the exact observed worst case


@pytest.mark.parametrize("m", [2, 3])
def test_random_seeds_can_mask_but_bist_cannot(m):
    """Ten random permutations expose most faults, but (at m = 3) not
    all — masking is real, and hoping random traffic hits a fault is
    not a guarantee.  The BIST schedule closes exactly that gap: every
    fault has a probe with a visible adaptive syndrome."""
    from repro.faults import build_bist_schedule

    schedule = build_bist_schedule(m)
    masked_on_seeds = 0
    for coordinate, value in fault_cases(m):
        visible = any(
            misrouted_outputs(
                route_with_stuck_switch(
                    m, words_for(m, seed), coordinate, value
                )
            )
            for seed in SEEDS
        )
        masked_on_seeds += not visible
        assert schedule.detects(coordinate, value) is not None, (
            f"{coordinate} stuck-{value} invisible to the BIST schedule"
        )
    if m == 3:
        assert masked_on_seeds > 0  # random traffic really does miss some


class TestExperimentDeterminism:
    """The rng-threading contract of the two fault experiments."""

    def test_coverage_experiment_reproducible_from_seed(self):
        from repro.faults import fault_coverage_experiment

        first = fault_coverage_experiment(2, trials=20, seed=7)
        second = fault_coverage_experiment(2, trials=20, seed=7)
        assert first.trials == second.trials

    def test_recovery_experiment_reproducible_from_seed(self):
        from repro.faults import recovery_experiment

        assert recovery_experiment(2, trials=10, seed=7) == (
            recovery_experiment(2, trials=10, seed=7)
        )

    def test_explicit_rng_equals_seed(self):
        import random

        from repro.faults import recovery_experiment

        assert recovery_experiment(2, trials=10, seed=7) == (
            recovery_experiment(2, trials=10, rng=random.Random(7))
        )

    def test_shared_stream_threads_across_experiments(self):
        """One seeded stream drives both experiments end to end: the
        second experiment sees where the first left the stream, and the
        whole pair is reproducible from the single seed."""
        import random

        from repro.faults import (
            fault_coverage_experiment,
            recovery_experiment,
        )

        def run_pair(rng):
            report = fault_coverage_experiment(2, trials=10, rng=rng)
            stats = recovery_experiment(2, trials=10, rng=rng)
            return [t.misrouted for t in report.trials], stats

        assert run_pair(random.Random(3)) == run_pair(random.Random(3))


M3_CASES = [(c, v) for c, v in fault_cases(3)]
M3_IDS = [case_id(case) for case in M3_CASES]


@pytest.mark.parametrize("coordinate, value", M3_CASES, ids=M3_IDS)
def test_vector_resilient_sweep_m3(coordinate, value):
    """ISSUE acceptance sweep, re-run on the compiled engine: for every
    single stuck-control fault at m=3 the vector resilient service
    delivers 100% of every batch, quarantines the primary, and its
    confirmed hypothesis class contains the true fault."""
    from repro.faults import fault_mask_for
    from repro.service import HealthState, ResilientVectorFabric

    fabric = ResilientVectorFabric(
        3, fault_mask=fault_mask_for(3, [(coordinate, value)])
    )
    n = 8
    for seed in range(3):
        pi = random_permutation(n, rng=seed)
        result = fabric.submit(pi.to_list(), tag=seed)
        # Recovered delivery is total: every output line got its word.
        assert result.delivered == n
        assert [w.address for w in result.outputs] == list(range(n))
    if not fabric.registry.is_quarantined:
        # The seeds happened to mask the fault; scheduled BIST cannot.
        fabric.check(tag="scheduled")
    assert fabric.state is HealthState.QUARANTINED
    assert (coordinate, value) in fabric.registry.confirmed_faults
    # The spare path stays correct after quarantine, too.
    pi = random_permutation(n, rng=99)
    result = fabric.submit(pi.to_list(), tag="post")
    assert result.mode == "failover"
    assert [w.address for w in result.outputs] == list(range(n))
