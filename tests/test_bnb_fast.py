"""The vectorized numpy BNB path must agree with the reference model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BNBNetwork
from repro.core.bnb import _vector_splitter_controls
from repro.core.splitter import Splitter
from repro.exceptions import NotAPermutationError
from repro.permutations import random_permutation


class TestVectorSplitter:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_controls_match_reference(self, p):
        """Element-for-element agreement with the object model over
        random even-weight blocks."""
        rng = np.random.default_rng(p)
        width = 1 << p
        splitter = Splitter(p, check_balance=False)
        blocks = rng.integers(0, 2, size=(40, width))
        controls = _vector_splitter_controls(blocks)
        for row in range(blocks.shape[0]):
            expected = splitter.controls(blocks[row].tolist())
            assert controls[row].tolist() == expected, blocks[row]


class TestRouteFast:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6, 7])
    def test_sorts_random_permutations(self, m):
        net = BNBNetwork(m)
        n = 1 << m
        for seed in range(20):
            pi = random_permutation(n, rng=seed)
            out = net.route_fast(np.array(pi.to_list()))
            assert np.array_equal(out, np.arange(n)), (m, seed)

    def test_matches_reference_arrangements(self):
        """Not just the final result: both models route word-for-word
        (the output of the reference model *is* sorted, so comparing
        outputs suffices at the boundary; inputs are randomized)."""
        m = 5
        net = BNBNetwork(m)
        for seed in range(10):
            pi = random_permutation(1 << m, rng=100 + seed)
            reference, _ = net.route(pi.to_list())
            fast = net.route_fast(np.array(pi.to_list()))
            assert [w.address for w in reference] == fast.tolist()

    def test_shape_validation(self):
        net = BNBNetwork(3)
        with pytest.raises(ValueError):
            net.route_fast(np.zeros((2, 4), dtype=np.int64))

    def test_permutation_validation(self):
        net = BNBNetwork(2)
        with pytest.raises(NotAPermutationError):
            net.route_fast(np.array([0, 0, 1, 2]))

    def test_large_instance(self):
        m = 10
        net = BNBNetwork(m)
        pi = random_permutation(1 << m, rng=1)
        out = net.route_fast(np.array(pi.to_list()))
        assert np.array_equal(out, np.arange(1 << m))
