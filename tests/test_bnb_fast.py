"""The vectorized numpy BNB path must agree with the reference model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BNBNetwork
from repro.core.bnb import _vector_splitter_controls
from repro.core.splitter import Splitter
from repro.exceptions import NotAPermutationError
from repro.permutations import random_permutation


class TestVectorSplitter:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_controls_match_reference(self, p):
        """Element-for-element agreement with the object model over
        random even-weight blocks."""
        rng = np.random.default_rng(p)
        width = 1 << p
        splitter = Splitter(p, check_balance=False)
        blocks = rng.integers(0, 2, size=(40, width))
        controls = _vector_splitter_controls(blocks)
        for row in range(blocks.shape[0]):
            expected = splitter.controls(blocks[row].tolist())
            assert controls[row].tolist() == expected, blocks[row]


class TestRouteFast:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6, 7])
    def test_sorts_random_permutations(self, m):
        net = BNBNetwork(m)
        n = 1 << m
        for seed in range(20):
            pi = random_permutation(n, rng=seed)
            out = net.route_fast(np.array(pi.to_list()))
            assert np.array_equal(out, np.arange(n)), (m, seed)

    def test_matches_reference_arrangements(self):
        """Not just the final result: both models route word-for-word
        (the output of the reference model *is* sorted, so comparing
        outputs suffices at the boundary; inputs are randomized)."""
        m = 5
        net = BNBNetwork(m)
        for seed in range(10):
            pi = random_permutation(1 << m, rng=100 + seed)
            reference, _ = net.route(pi.to_list())
            fast = net.route_fast(np.array(pi.to_list()))
            assert [w.address for w in reference] == fast.tolist()

    def test_shape_validation(self):
        net = BNBNetwork(3)
        with pytest.raises(ValueError):
            net.route_fast(np.zeros((2, 4), dtype=np.int64))

    def test_permutation_validation(self):
        net = BNBNetwork(2)
        with pytest.raises(NotAPermutationError):
            net.route_fast(np.array([0, 0, 1, 2]))

    def test_large_instance(self):
        m = 10
        net = BNBNetwork(m)
        pi = random_permutation(1 << m, rng=1)
        out = net.route_fast(np.array(pi.to_list()))
        assert np.array_equal(out, np.arange(1 << m))


class TestValidationParity:
    """``route_fast`` must fail exactly like ``route``: same exception
    types, same messages, same ``check_inputs`` escape hatch."""

    def test_wrong_length_same_error_as_route(self):
        net = BNBNetwork(3)
        with pytest.raises(ValueError) as fast_info:
            net.route_fast(np.array([0, 1, 2]))
        with pytest.raises(ValueError) as slow_info:
            net.route([0, 1, 2])
        assert str(fast_info.value) == str(slow_info.value)
        assert str(fast_info.value) == "expected 8 inputs, got 3"

    def test_non_permutation_same_error_as_route(self):
        net = BNBNetwork(2)
        bad = [0, 0, 1, 2]
        with pytest.raises(NotAPermutationError) as fast_info:
            net.route_fast(np.array(bad))
        with pytest.raises(NotAPermutationError) as slow_info:
            net.route(list(bad))
        assert str(fast_info.value) == str(slow_info.value)
        assert fast_info.value.addresses == bad

    def test_out_of_range_address_rejected(self):
        net = BNBNetwork(2)
        with pytest.raises(NotAPermutationError):
            net.route_fast(np.array([0, 1, 2, 99]))

    def test_bad_shape_rejected(self):
        net = BNBNetwork(3)
        with pytest.raises(ValueError, match=r"expected shape \(8,\)"):
            net.route_fast(np.zeros((2, 4), dtype=np.int64))

    def test_check_inputs_false_skips_address_validation(self):
        """Both paths honour the escape hatch: with ``check_inputs``
        off, neither raises :class:`NotAPermutationError` (the object
        model's splitters may still trip on unbalanced garbage — that
        is a deeper layer, not input validation)."""
        unchecked = BNBNetwork(2, check_inputs=False)
        bad = np.array([0, 0, 1, 2])
        out = unchecked.route_fast(bad)  # no validation: must not raise
        assert out.shape == (4,)
        with pytest.raises(NotAPermutationError):
            BNBNetwork(2).route_fast(bad)

    def test_check_inputs_false_still_routes_valid_input(self):
        net = BNBNetwork(3, check_inputs=False)
        pi = random_permutation(8, rng=5)
        out = net.route_fast(np.array(pi.to_list()))
        assert np.array_equal(out, np.arange(8))
