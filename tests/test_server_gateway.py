"""The asyncio gateway end to end: delivery, backpressure, plane failure.

Every test runs on a stock event loop via the ``run_async`` fixture
(per-test timeout included), so the suite needs no pytest-asyncio.
"""

import asyncio
import random

import pytest

from repro.core.pipeline import PipelinedBNBFabric, stuck_control_override
from repro.exceptions import (
    AdmissionRejectedError,
    GatewayClosedError,
    InputError,
)
from repro.faults import SwitchCoordinate, fault_mask_for
from repro.server import (
    AsyncGateway,
    GatewayConfig,
    PipelinedPlane,
    ResilientPlane,
)
from repro.service import ResilientFabric, ResilientVectorFabric

pytestmark = pytest.mark.asyncio_suite


class TestBasics:
    def test_single_send_round_trip(self, run_async):
        async def scenario():
            async with AsyncGateway(GatewayConfig(m=3)) as gateway:
                receipt = await gateway.send(5, payload="hello")
            return receipt

        receipt = run_async(scenario())
        assert receipt.destination == 5
        assert receipt.payload == "hello"
        assert receipt.mode == "clean"
        assert receipt.latency_cycles >= 1

    def test_bad_destination_raises_input_error(self, run_async):
        async def scenario():
            async with AsyncGateway(GatewayConfig(m=3)) as gateway:
                with pytest.raises(InputError):
                    await gateway.send(8)
                with pytest.raises(InputError):
                    await gateway.send(-1)

        run_async(scenario())

    def test_send_after_stop_raises_closed(self, run_async):
        async def scenario():
            gateway = AsyncGateway(GatewayConfig(m=3))
            await gateway.start()
            await gateway.stop()
            with pytest.raises(GatewayClosedError):
                await gateway.send(0)

        run_async(scenario())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(m=0)
        with pytest.raises(ValueError):
            GatewayConfig(m=3, planes=0)
        with pytest.raises(ValueError):
            GatewayConfig(m=3, queue_capacity=0)
        with pytest.raises(ValueError):
            GatewayConfig(m=3, engine="simd")
        # The resilient wrapper is engine-agnostic: combining it with
        # the vector engine builds ResilientVectorFabric planes.
        assert GatewayConfig(m=3, resilient=True, engine="vector").engine == (
            "vector"
        )

    def test_engine_selects_plane_kind(self, run_async):
        async def scenario(engine, resilient=False):
            config = GatewayConfig(m=3, engine=engine, resilient=resilient)
            async with AsyncGateway(config) as gateway:
                await gateway.send(2, payload="x")
                plane = gateway.stats()["planes"][0]
                return plane["kind"], plane["engine"]

        assert run_async(scenario("object")) == ("PipelinedPlane", "object")
        assert run_async(scenario("vector")) == ("VectorPlane", "vector")
        assert run_async(scenario("object", resilient=True)) == (
            "ResilientPlane",
            "object",
        )
        assert run_async(scenario("vector", resilient=True)) == (
            "ResilientPlane",
            "vector",
        )


class TestConcurrentDelivery:
    def test_many_clients_all_delivered_exactly(self, run_async):
        async def scenario():
            config = GatewayConfig(m=3, planes=2, queue_capacity=16)
            rng = random.Random(7)
            async with AsyncGateway(config) as gateway:
                receipts = await asyncio.gather(
                    *(
                        gateway.send_with_retry(
                            rng.randrange(8), payload=index
                        )
                        for index in range(400)
                    )
                )
                stats = gateway.stats()
            return receipts, stats

        receipts, stats = run_async(scenario())
        assert len(receipts) == 400
        # Zero misdelivery: every receipt echoes its own payload.
        assert all(
            receipt.payload == index for index, receipt in enumerate(receipts)
        )
        assert stats["delivered_words"] == 400
        assert stats["queues"]["max_depth"] <= 16

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ["object", "vector"])
    def test_acceptance_1000_clients_m4(self, run_async, engine):
        """ISSUE acceptance: 1000 concurrent clients at m=4, zero
        misdelivered words, bounded queues under overload — on both
        the reference object engine and the compiled vector engine."""

        async def client(gateway, rng, cid, receipts):
            for k in range(2):
                receipt = await gateway.send_with_retry(
                    rng.randrange(16), payload=(cid, k), attempts=64
                )
                receipts.append(((cid, k), receipt))

        async def scenario():
            config = GatewayConfig(
                m=4, planes=2, queue_capacity=64, engine=engine
            )
            receipts = []
            async with AsyncGateway(config) as gateway:
                seeder = random.Random(42)
                rngs = [
                    random.Random(seeder.random()) for _ in range(1000)
                ]
                await asyncio.gather(
                    *(
                        client(gateway, rngs[cid], cid, receipts)
                        for cid in range(1000)
                    )
                )
                stats = gateway.stats()
            return receipts, stats

        receipts, stats = run_async(scenario())
        assert len(receipts) == 2000
        assert all(
            receipt.payload == expected for expected, receipt in receipts
        )
        assert stats["delivered_words"] == 2000
        # Bounded queues: depth never exceeded the admission bound.
        assert stats["queues"]["max_depth"] <= 64
        assert stats["latency_cycles"]["p99"] is not None

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ["object", "vector"])
    def test_acceptance_1000_clients_resilient_faulted(
        self, run_async, engine
    ):
        """ISSUE acceptance: 1000 clients at m=4 on resilient planes,
        with one plane killed outright and a stuck-control fault
        injected into another mid-flight — zero misdelivered words on
        either engine."""

        async def client(gateway, rng, cid, receipts):
            for k in range(2):
                receipt = await gateway.send_with_retry(
                    rng.randrange(16), payload=(cid, k), attempts=64
                )
                receipts.append(((cid, k), receipt))

        async def chaos(gateway):
            # Let traffic build, then kill one plane and break another.
            await gateway.wait_cycles(8)
            gateway.kill_plane(2, reason="acceptance plane-kill")
            gateway.inject_fault(0, (3, 0, 0, 0, 0), 1)

        async def scenario():
            config = GatewayConfig(
                m=4, planes=3, queue_capacity=64, engine=engine,
                resilient=True,
            )
            receipts = []
            async with AsyncGateway(config) as gateway:
                seeder = random.Random(42)
                rngs = [
                    random.Random(seeder.random()) for _ in range(1000)
                ]
                await asyncio.gather(
                    chaos(gateway),
                    *(
                        client(gateway, rngs[cid], cid, receipts)
                        for cid in range(1000)
                    ),
                )
                stats = gateway.stats()
            return receipts, stats

        receipts, stats = run_async(scenario())
        assert len(receipts) == 2000
        # Zero misdelivery despite the plane kill and the live fault.
        assert all(
            receipt.payload == expected for expected, receipt in receipts
        )
        assert stats["delivered_words"] == 2000
        assert stats["planes"][2]["healthy"] is False
        assert stats["planes"][0]["service_state"] == "quarantined"
        assert stats["planes"][0]["engine"] == engine
        assert stats["queues"]["max_depth"] <= 64

    def test_wait_cycles_advances_even_when_idle(self, run_async):
        async def scenario():
            async with AsyncGateway(GatewayConfig(m=3)) as gateway:
                start = gateway.cycle
                reached = await gateway.wait_cycles(5)
                return start, reached, gateway.cycle

        start, reached, now = run_async(scenario())
        assert reached >= start + 5
        assert now >= reached


class TestBackpressure:
    def test_overload_rejects_instead_of_buffering(self, run_async):
        async def scenario():
            config = GatewayConfig(m=3, planes=1, queue_capacity=2)
            async with AsyncGateway(config) as gateway:
                # Flood one destination without retry; the VOQ bound must
                # reject the excess at admission time.
                tasks = [
                    asyncio.ensure_future(gateway.send(3, payload=k))
                    for k in range(40)
                ]
                done = await asyncio.gather(*tasks, return_exceptions=True)
                stats = gateway.stats()
            return done, stats

        done, stats = run_async(scenario())
        delivered = [r for r in done if not isinstance(r, Exception)]
        rejected = [r for r in done if isinstance(r, AdmissionRejectedError)]
        assert delivered and rejected
        assert len(delivered) + len(rejected) == 40
        assert stats["queues"]["max_depth"] <= 2
        assert stats["queues"]["rejected"] == len(rejected)

    def test_retry_after_hint_is_positive_and_honoured(self, run_async):
        async def scenario():
            config = GatewayConfig(m=3, planes=1, queue_capacity=1)
            async with AsyncGateway(config) as gateway:
                first = asyncio.ensure_future(gateway.send(2, payload="a"))
                await asyncio.sleep(0)
                try:
                    hint = None
                    await gateway.send(2, payload="b")
                except AdmissionRejectedError as error:
                    hint = error.retry_after_cycles
                # With retries the same word eventually lands.
                second = await gateway.send_with_retry(2, payload="b")
                await first
                return hint, second

        hint, second = run_async(scenario())
        if hint is not None:  # first word may already have ridden a frame
            assert hint >= 1
        assert second.payload == "b"


class TestPlaneFailure:
    def test_operator_kill_mid_run_keeps_delivery_total(self, run_async):
        async def scenario():
            config = GatewayConfig(m=3, planes=2, queue_capacity=16)
            rng = random.Random(11)
            async with AsyncGateway(config) as gateway:
                tasks = [
                    asyncio.ensure_future(
                        gateway.send_with_retry(
                            rng.randrange(8), payload=index, attempts=64
                        )
                    )
                    for index in range(300)
                ]
                # Let traffic get airborne, then kill a plane under it.
                await gateway.wait_cycles(3)
                stranded = gateway.kill_plane(0, reason="test kill")
                receipts = await asyncio.gather(*tasks)
                stats = gateway.stats()
            return stranded, receipts, stats

        stranded, receipts, stats = run_async(scenario())
        assert all(
            receipt.payload == index for index, receipt in enumerate(receipts)
        )
        # The dead plane carried words; they were requeued, not dropped.
        assert stranded > 0
        assert stats["queues"]["requeued"] >= stranded
        healthy = [plane["healthy"] for plane in stats["planes"]]
        assert healthy == [False, True]
        # Everything after the kill rode the surviving plane.
        assert stats["planes"][1]["words_delivered"] > 0

    def test_faulty_plane_auto_quarantines_on_misdelivery(self, run_async):
        def factory(plane_id, m):
            if plane_id == 0:
                # A late-stage stuck switch: reliably misroutes.
                return PipelinedPlane(
                    plane_id,
                    m,
                    control_override=stuck_control_override(2, 0, 0, 0, 0, 1),
                )
            return PipelinedPlane(plane_id, m)

        async def scenario():
            config = GatewayConfig(m=3, planes=2, queue_capacity=16)
            rng = random.Random(13)
            async with AsyncGateway(config, plane_factory=factory) as gateway:
                receipts = await asyncio.gather(
                    *(
                        gateway.send_with_retry(
                            rng.randrange(8), payload=index, attempts=64
                        )
                        for index in range(200)
                    )
                )
                stats = gateway.stats()
            return receipts, stats

        receipts, stats = run_async(scenario())
        # 100% delivery despite the physical fault...
        assert all(
            receipt.payload == index for index, receipt in enumerate(receipts)
        )
        # ...because the misdelivering plane was failed and drained.
        assert stats["planes"][0]["healthy"] is False
        assert "misdelivered" in stats["planes"][0]["failure"]
        assert stats["queues"]["requeued"] > 0

    def test_resilient_plane_absorbs_fault_without_dying(self, run_async):
        def factory(plane_id, m):
            if plane_id == 0:
                pipeline = PipelinedBNBFabric(
                    m,
                    control_override=stuck_control_override(2, 0, 0, 0, 0, 1),
                )
                return ResilientPlane(
                    plane_id, m, fabric=ResilientFabric(m, pipeline=pipeline)
                )
            return ResilientPlane(plane_id, m)

        async def scenario():
            config = GatewayConfig(
                m=3, planes=2, queue_capacity=16, resilient=True
            )
            rng = random.Random(17)
            async with AsyncGateway(config, plane_factory=factory) as gateway:
                receipts = await asyncio.gather(
                    *(
                        gateway.send_with_retry(
                            rng.randrange(8), payload=index, attempts=64
                        )
                        for index in range(120)
                    )
                )
                stats = gateway.stats()
            return receipts, stats

        receipts, stats = run_async(scenario())
        assert all(
            receipt.payload == index for index, receipt in enumerate(receipts)
        )
        # The faulty plane stayed in the pool: its ResilientFabric
        # quarantined the primary and rode the Benes spare instead.
        assert stats["planes"][0]["healthy"] is True
        assert stats["planes"][0]["service_state"] == "quarantined"
        modes = stats["delivery_modes"]
        assert modes.get("failover", 0) + modes.get("degraded", 0) > 0

    def test_resilient_vector_plane_absorbs_fault_without_dying(
        self, run_async
    ):
        """The vector twin of the test above: a ResilientVectorFabric
        plane seeded with a fault mask quarantines its compiled primary
        and keeps delivering via the compiled Benes spare."""

        def factory(plane_id, m):
            if plane_id == 0:
                mask = fault_mask_for(
                    m, [(SwitchCoordinate(2, 0, 0, 0, 0), 1)]
                )
                return ResilientPlane(
                    plane_id,
                    m,
                    fabric=ResilientVectorFabric(m, fault_mask=mask),
                )
            return ResilientPlane(plane_id, m, fabric=ResilientVectorFabric(m))

        async def scenario():
            config = GatewayConfig(
                m=3, planes=2, queue_capacity=16, resilient=True,
                engine="vector",
            )
            rng = random.Random(17)
            async with AsyncGateway(config, plane_factory=factory) as gateway:
                receipts = await asyncio.gather(
                    *(
                        gateway.send_with_retry(
                            rng.randrange(8), payload=index, attempts=64
                        )
                        for index in range(120)
                    )
                )
                stats = gateway.stats()
            return receipts, stats

        receipts, stats = run_async(scenario())
        assert all(
            receipt.payload == index for index, receipt in enumerate(receipts)
        )
        assert stats["planes"][0]["healthy"] is True
        assert stats["planes"][0]["engine"] == "vector"
        assert stats["planes"][1]["engine"] == "vector"
        assert stats["planes"][0]["service_state"] == "quarantined"
        modes = stats["delivery_modes"]
        assert modes.get("failover", 0) + modes.get("degraded", 0) > 0

    @pytest.mark.parametrize("engine", ["object", "vector"])
    def test_inject_fault_quarantines_live_plane(self, run_async, engine):
        """Operator fault injection through the gateway API: the target
        plane walks detection -> quarantine -> failover while every
        word keeps getting delivered."""

        async def scenario():
            config = GatewayConfig(
                m=3, planes=2, queue_capacity=16, resilient=True,
                engine=engine,
            )
            rng = random.Random(23)
            async with AsyncGateway(config) as gateway:
                described = gateway.inject_fault(0, (2, 0, 0, 0, 0), 1)
                receipts = await asyncio.gather(
                    *(
                        gateway.send_with_retry(
                            rng.randrange(8), payload=index, attempts=64
                        )
                        for index in range(120)
                    )
                )
                stats = gateway.stats()
            return described, receipts, stats

        described, receipts, stats = run_async(scenario())
        assert described["engine"] == engine
        assert all(
            receipt.payload == index for index, receipt in enumerate(receipts)
        )
        assert stats["planes"][0]["service_state"] == "quarantined"
        assert stats["planes"][1]["service_state"] == "healthy"

    def test_inject_fault_rejects_bad_targets(self, run_async):
        async def scenario():
            async with AsyncGateway(GatewayConfig(m=3, planes=1)) as gateway:
                with pytest.raises(InputError):
                    gateway.inject_fault(5, (2, 0, 0, 0, 0), 1)
                # A plain (non-resilient) plane cannot take injections.
                with pytest.raises(InputError):
                    gateway.inject_fault(0, (2, 0, 0, 0, 0), 1)

        run_async(scenario())


class TestShutdown:
    def test_stop_drains_backlog(self, run_async):
        async def scenario():
            config = GatewayConfig(m=3, planes=1, queue_capacity=8)
            gateway = AsyncGateway(config)
            await gateway.start()
            rng = random.Random(19)
            tasks = [
                asyncio.ensure_future(
                    gateway.send_with_retry(rng.randrange(8), payload=k)
                )
                for k in range(40)
            ]
            await asyncio.sleep(0)
            await gateway.stop(drain=True)
            results = await asyncio.gather(*tasks, return_exceptions=True)
            return results, gateway.stats()

        results, stats = run_async(scenario())
        # Drained shutdown delivers everything already admitted; words
        # rejected by a full queue during the shutdown race surface as
        # backpressure or closed-gateway errors, never as silent loss.
        for result in results:
            assert not isinstance(result, Exception) or isinstance(
                result, (AdmissionRejectedError, GatewayClosedError)
            )
        assert stats["queues"]["queued"] == 0

    def test_stats_are_json_safe(self, run_async):
        import json

        async def scenario():
            async with AsyncGateway(GatewayConfig(m=3, planes=2)) as gateway:
                await gateway.send(1)
                return gateway.stats()

        stats = run_async(scenario())
        encoded = json.loads(json.dumps(stats))
        assert encoded["delivered_words"] == 1
        assert encoded["planes"][0]["kind"] == "PipelinedPlane"
