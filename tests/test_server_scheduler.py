"""Frame scheduler: coalescing VOQ heads into valid permutation frames."""

import pytest

from repro.core.bnb import BNBNetwork
from repro.core.traffic import coalesce_frame
from repro.exceptions import InputError
from repro.server import FrameScheduler, QueueEntry, VirtualOutputQueues


def fill_voqs(n, requests, capacity=16):
    voqs = VirtualOutputQueues(n, capacity=capacity)
    for payload, dest in enumerate(requests):
        voqs.admit(
            QueueEntry(destination=dest, payload=payload, enqueued_cycle=0)
        )
    return voqs


class TestCoalesceFrame:
    def test_idle_fill_produces_permutation(self):
        plan = coalesce_frame([5, 2, 7], 8)
        assert sorted(plan.addresses) == list(range(8))
        assert set(plan.line_of) == {5, 2, 7}
        for dest, line in plan.line_of.items():
            assert plan.addresses[line] == dest
        assert plan.active == 3
        assert plan.fill == pytest.approx(3 / 8)

    def test_full_frame(self):
        plan = coalesce_frame(list(range(8)), 8)
        assert plan.fill == 1.0
        assert plan.addresses == list(range(8))

    def test_rejects_overflow_and_duplicates(self):
        with pytest.raises(InputError):
            coalesce_frame(list(range(9)), 8)
        with pytest.raises(InputError):
            coalesce_frame([1, 1], 8)
        with pytest.raises(InputError):
            coalesce_frame([8], 8)


class TestFrameScheduler:
    def test_frame_words_route_cleanly(self):
        n = 8
        voqs = fill_voqs(n, [3, 3, 6, 0, 6])
        scheduler = FrameScheduler(n)
        frame = scheduler.next_frame(voqs, cycle=1)
        # One head per distinct destination: {3, 6, 0}.
        assert set(frame.entries) == {3, 6, 0}
        assert frame.active == 3
        # The words really are routable by a BNB network, filler and all.
        outputs, _record = BNBNetwork(3).route(frame.words)
        for dest, entry in frame.entries.items():
            assert outputs[dest].payload is entry

    def test_fifo_per_destination_across_frames(self):
        n = 8
        voqs = fill_voqs(n, [4, 4, 4])
        scheduler = FrameScheduler(n)
        seen = []
        for cycle in range(3):
            frame = scheduler.next_frame(voqs, cycle=cycle)
            seen.append(frame.entries[4].payload)
        assert seen == [0, 1, 2]

    def test_idle_returns_none(self):
        voqs = VirtualOutputQueues(8, capacity=4)
        scheduler = FrameScheduler(8)
        assert scheduler.next_frame(voqs, cycle=0) is None
        assert scheduler.frames_scheduled == 0

    def test_fill_accounting(self):
        n = 4
        scheduler = FrameScheduler(n)
        voqs = fill_voqs(n, [0, 1, 2, 3])
        full = scheduler.next_frame(voqs, cycle=0)
        assert full.fill == 1.0
        voqs = fill_voqs(n, [2])
        quarter = scheduler.next_frame(voqs, cycle=1)
        assert quarter.fill == pytest.approx(1 / 4)
        assert scheduler.mean_fill == pytest.approx((1.0 + 0.25) / 2)
        assert scheduler.words_scheduled == 5
        snap = scheduler.snapshot()
        assert snap["frames"] == 2

    def test_filler_words_carry_no_payload(self):
        n = 8
        voqs = fill_voqs(n, [7])
        frame = FrameScheduler(n).next_frame(voqs, cycle=0)
        real = [word for word in frame.words if word.payload is not None]
        assert len(real) == 1
        assert real[0].address == 7
        assert sorted(word.address for word in frame.words) == list(range(n))

    def test_tags_are_unique_and_increasing(self):
        n = 4
        scheduler = FrameScheduler(n)
        tags = []
        for cycle in range(5):
            voqs = fill_voqs(n, [cycle % n])
            tags.append(scheduler.next_frame(voqs, cycle=cycle).tag)
        assert tags == sorted(tags)
        assert len(set(tags)) == 5
