"""Unit tests for the crossbar ground truth."""

import pytest

from repro.baselines import Crossbar
from repro.core import Word
from repro.exceptions import NotAPermutationError, PathConflictError


class TestCrossbar:
    def test_routes_any_permutation(self):
        bar = Crossbar(5)  # not a power of two: crossbars don't care
        outputs = bar.route([4, 2, 0, 3, 1])
        assert [w.address for w in outputs] == [0, 1, 2, 3, 4]

    def test_payloads(self):
        bar = Crossbar(3)
        outputs = bar.route([Word(2, "a"), Word(0, "b"), Word(1, "c")])
        assert [w.payload for w in outputs] == ["b", "c", "a"]

    def test_crosspoint_count(self):
        assert Crossbar(8).crosspoint_count == 64

    def test_conflict_detection(self):
        with pytest.raises(PathConflictError):
            Crossbar(3).route([1, 1, 0])

    def test_out_of_range_address(self):
        with pytest.raises(NotAPermutationError):
            Crossbar(3).route([0, 1, 3])

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Crossbar(0)
        with pytest.raises(ValueError):
            Crossbar(3).route([0, 1])
