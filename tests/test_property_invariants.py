"""Cross-cutting property-based invariants (hypothesis).

These complement the per-module suites with whole-system properties:
router equivalence, conservation laws, and algebraic identities that
must hold for *any* input the strategies can produce.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import BatcherNetwork, BenesNetwork, KoppelmanSRPN
from repro.core import BitSorterNetwork, BNBNetwork, Splitter, Word
from repro.permutations import Permutation


def permutations16():
    return st.permutations(list(range(16))).map(Permutation)


def permutations8():
    return st.permutations(list(range(8))).map(Permutation)


class TestRouterEquivalence:
    @settings(max_examples=40)
    @given(permutations16())
    def test_all_routers_agree(self, pi):
        words = [Word(address=pi(j), payload=j) for j in range(16)]
        bnb, _ = BNBNetwork(4).route(list(words))
        batcher, _ = BatcherNetwork(4).route(list(words))
        benes, _ = BenesNetwork(4).route(list(words))
        koppelman = KoppelmanSRPN(4).route(list(words))
        reference = [(w.address, w.payload) for w in bnb]
        for outputs in (batcher, benes, koppelman):
            assert [(w.address, w.payload) for w in outputs] == reference

    @settings(max_examples=40)
    @given(permutations16())
    def test_vectorized_equals_reference(self, pi):
        net = BNBNetwork(4)
        reference, _ = net.route(pi.to_list())
        fast = net.route_fast(np.array(pi.to_list()))
        assert [w.address for w in reference] == fast.tolist()


class TestConservation:
    @settings(max_examples=60)
    @given(permutations8())
    def test_payload_multiset_preserved(self, pi):
        words = [Word(address=pi(j), payload=f"p{j}") for j in range(8)]
        outputs, _ = BNBNetwork(3).route(words)
        assert sorted(w.payload for w in outputs) == sorted(
            w.payload for w in words
        )

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 1), min_size=16, max_size=16))
    def test_bsn_preserves_bit_multiset(self, bits):
        bsn = BitSorterNetwork(4, check_balance=False)
        outputs, _ = bsn.route_bits(bits)
        assert sorted(outputs) == sorted(bits)

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 1), min_size=8, max_size=8))
    def test_splitter_preserves_bit_multiset(self, bits):
        splitter = Splitter(3, check_balance=False)
        outputs, _ = splitter.route_bits(bits)
        assert sorted(outputs) == sorted(bits)


class TestAlgebraicIdentities:
    @settings(max_examples=50)
    @given(permutations8())
    def test_routing_inverse_identity(self, pi):
        """Routing pi then reading back through pi^{-1} recovers order:
        output line a holds the word from input pi^{-1}(a)."""
        words = [Word(address=pi(j), payload=j) for j in range(8)]
        outputs, _ = BNBNetwork(3).route(words)
        inverse = pi.inverse()
        for line, word in enumerate(outputs):
            assert word.payload == inverse(line)

    @settings(max_examples=30)
    @given(permutations8(), permutations8())
    def test_two_pass_composition(self, pi, sigma):
        """Routing sigma, then re-addressing by pi and routing again,
        realizes the composition pi o sigma."""
        net = BNBNetwork(3)
        first, _ = net.route(
            [Word(address=sigma(j), payload=j) for j in range(8)]
        )
        second, _ = net.route(
            [Word(address=pi(line), payload=word.payload)
             for line, word in enumerate(first)]
        )
        composed = pi * sigma
        inverse = composed.inverse()
        for line, word in enumerate(second):
            assert word.payload == inverse(line)


class TestBenesControlsAreValid:
    @settings(max_examples=30)
    @given(permutations16())
    def test_looping_always_legal(self, pi):
        """The looping algorithm never produces out-of-range controls
        and always realizes exactly the requested permutation."""
        net = BenesNetwork(4)
        controls = net.controls_for(pi)
        for column_controls in controls:
            assert all(c in (0, 1) for c in column_controls)
        assert net.fabric.realized_permutation(controls) == pi
