"""Tests for Batcher's odd-even merge sorting network (Eqs. 10-12)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    BatcherNetwork,
    batcher_comparator_count,
    batcher_stage_count,
    odd_even_merge_sort_pairs,
)
from repro.exceptions import NotAPermutationError
from repro.permutations import random_permutation


class TestComparatorList:
    def test_known_small_counts(self):
        """p(2)=1, p(4)=5, p(8)=19, p(16)=63: the textbook values."""
        assert len(odd_even_merge_sort_pairs(2)) == 1
        assert len(odd_even_merge_sort_pairs(4)) == 5
        assert len(odd_even_merge_sort_pairs(8)) == 19
        assert len(odd_even_merge_sort_pairs(16)) == 63

    def test_counts_match_eq10(self):
        for m in range(1, 11):
            n = 1 << m
            assert len(odd_even_merge_sort_pairs(n)) == batcher_comparator_count(n)

    def test_pairs_ordered(self):
        for i, j in odd_even_merge_sort_pairs(16):
            assert i < j

    def test_n1_empty(self):
        assert odd_even_merge_sort_pairs(1) == []
        assert batcher_comparator_count(1) == 0


class TestStages:
    def test_stage_count_formula(self):
        for m in range(1, 9):
            net = BatcherNetwork(m)
            assert net.stage_count == batcher_stage_count(1 << m) == m * (m + 1) // 2

    def test_stages_have_disjoint_lines(self):
        net = BatcherNetwork(4)
        for stage in net.stages():
            touched = [line for pair in stage for line in pair]
            assert len(touched) == len(set(touched))

    def test_stage_comparators_sum(self):
        net = BatcherNetwork(4)
        assert sum(len(s) for s in net.stages()) == net.comparator_count


class TestSorting:
    def test_zero_one_principle_exhaustive_n8(self):
        """Sorting every 0/1 vector proves the network sorts all inputs
        (Knuth's 0-1 principle)."""
        net = BatcherNetwork(3)
        for bits in itertools.product([0, 1], repeat=8):
            out, _ = net.sort(list(bits))
            assert out == sorted(bits)

    def test_zero_one_principle_n16(self):
        net = BatcherNetwork(4)
        for bits in itertools.product([0, 1], repeat=16):
            out, _ = net.sort(list(bits))
            if out != sorted(bits):
                pytest.fail(f"unsorted: {bits}")

    @given(st.lists(st.integers(0, 1000), min_size=16, max_size=16))
    def test_sorts_arbitrary_keys(self, keys):
        out, _ = BatcherNetwork(4).sort(keys)
        assert out == sorted(keys)

    def test_stable_sized_input_required(self):
        with pytest.raises(ValueError):
            BatcherNetwork(3).sort([1, 2, 3])


class TestRouting:
    def test_routes_permutations(self):
        net = BatcherNetwork(4)
        for seed in range(30):
            pi = random_permutation(16, rng=seed)
            out, _ = net.route(pi.to_list())
            assert [w.address for w in out] == list(range(16))

    def test_rejects_non_permutation(self):
        with pytest.raises(NotAPermutationError):
            BatcherNetwork(2).route([0, 1, 1, 3])

    def test_records(self):
        net = BatcherNetwork(3)
        _out, records = net.route(list(range(8)), record=True)
        assert records is not None
        assert len(records) == net.comparator_count
        # Identity input: nothing swaps.
        assert not any(r.swapped for r in records)


class TestCostModel:
    def test_eq11_switch_slices_expansion(self):
        """Product form p(N)(m+w) equals the paper's expanded polynomial."""
        for m in range(1, 10):
            n = 1 << m
            for w in (0, 1, 8, 16):
                net = BatcherNetwork(m, w=w)
                expanded = (
                    n * m**3 / 4
                    + n * (w - 1) * m**2 / 4
                    - (n * w / 4 - n + 1) * m
                    + (n - 1) * w
                )
                assert net.switch_slice_count == round(expanded), (m, w)

    def test_eq11_function_slices_expansion(self):
        for m in range(1, 10):
            n = 1 << m
            net = BatcherNetwork(m)
            expanded = n * m**3 / 4 - n * m**2 / 4 + (n - 1) * m
            assert net.function_slice_count == round(expanded), m

    def test_eq12_delay(self):
        for m in range(1, 10):
            net = BatcherNetwork(m)
            expected = (m**3 + m**2) / 2 + (m**2 + m) / 2
            assert net.propagation_delay() == pytest.approx(expected)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BatcherNetwork(-1)
        with pytest.raises(ValueError):
            BatcherNetwork(3, w=-2)
