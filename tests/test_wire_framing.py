"""The binary wire framing: round trips, hostile input, parity.

Three layers of confidence:

* **Hypothesis round trips** — any op body of JSON-able metadata plus
  int64 arrays survives ``encode_frame`` → ``unpack_header`` →
  ``decode_body`` byte-for-byte.
* **Hostile bytes** — truncated headers, oversize length fields,
  ragged payloads and garbage magic all land on the stable
  ``bad-request``/close behaviour, never a hang or a crash.
* **Differential framing parity** — the same ops through the JSON and
  the binary framing produce identical response objects (arrays
  compared as lists), pinning the two-transports-one-registry design.
"""

import asyncio
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.client import GatewayClient
from repro.exceptions import WireFormatError
from repro.server import AsyncGateway, GatewayConfig, GatewayServer
from repro.server.framing import (
    HEADER,
    MAGIC,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_body,
    encode_frame,
    jsonable,
    unpack_header,
)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**53), 2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)

meta_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)

arrays = st.one_of(
    st.lists(st.integers(-(2**62), 2**62 - 1), max_size=32).map(
        lambda items: np.asarray(items, dtype=np.int64)
    ),
    st.tuples(
        st.integers(0, 5), st.integers(1, 5)
    ).map(lambda shape: np.arange(shape[0] * shape[1], dtype=np.int64).reshape(shape)),
)

bodies = st.dictionaries(
    # "_arrays" is the manifest's reserved key; real op fields never
    # use it, and a collision would (rightly) confuse the decoder.
    st.text(max_size=12).filter(lambda key: key != "_arrays"),
    st.one_of(meta_values, arrays),
    max_size=6,
)


class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(
        body=bodies,
        opcode=st.integers(0, 0xFFFF),
        request_id=st.integers(0, 0xFFFFFFFF),
    )
    def test_encode_decode_round_trip(self, body, opcode, request_id):
        frame = encode_frame(opcode, body, request_id=request_id)
        header = unpack_header(frame[: HEADER.size])
        assert header.opcode == opcode
        assert header.request_id == request_id
        assert (header.major, header.minor) == PROTOCOL_VERSION
        decoded = decode_body(header, frame[HEADER.size :])
        assert set(decoded) == set(body)
        for key, value in body.items():
            if isinstance(value, np.ndarray):
                assert decoded[key].shape == value.shape
                assert np.array_equal(decoded[key], value)
            else:
                assert decoded[key] == value or (
                    # JSON round-trips floats exactly; hypothesis floats
                    # at width=32 stay representable, so == is right —
                    # this branch only tolerates -0.0 vs 0.0.
                    decoded[key] == 0 and value == 0
                )

    def test_zero_copy_decode(self):
        """Decoded arrays are views over the received buffer."""
        payload = np.arange(1024, dtype=np.int64)
        frame = encode_frame(6, {"dests": payload})
        header = unpack_header(frame[: HEADER.size])
        decoded = decode_body(header, frame[HEADER.size :])
        assert decoded["dests"].base is not None
        assert np.array_equal(decoded["dests"], payload)


class TestHostileBytes:
    def test_short_header_rejected(self):
        with pytest.raises(WireFormatError):
            unpack_header(MAGIC + b"\x02")

    @settings(max_examples=60, deadline=None)
    @given(garbage=st.binary(min_size=HEADER.size, max_size=HEADER.size))
    def test_garbage_magic_rejected(self, garbage):
        if garbage[:4] == MAGIC:
            garbage = b"XXXX" + garbage[4:]
        with pytest.raises(WireFormatError):
            unpack_header(garbage)

    def test_oversize_length_rejected_before_allocation(self):
        raw = HEADER.pack(MAGIC, 2, 0, 1, 0, MAX_FRAME_BYTES, 8)
        with pytest.raises(WireFormatError, match="cap"):
            unpack_header(raw)

    def test_ragged_payload_rejected(self):
        raw = HEADER.pack(MAGIC, 2, 0, 1, 0, 0, 7)
        with pytest.raises(WireFormatError, match="int64"):
            unpack_header(raw)

    @settings(max_examples=60, deadline=None)
    @given(cut=st.integers(0, 40))
    def test_truncated_body_rejected(self, cut):
        frame = encode_frame(6, {"dests": np.arange(8, dtype=np.int64)})
        header = unpack_header(frame[: HEADER.size])
        body = frame[HEADER.size :]
        if cut == 0:
            return  # whole body: valid by construction
        with pytest.raises(WireFormatError):
            decode_body(header, body[:-cut])

    def test_manifest_overrun_rejected(self):
        # Manifest promises more array than the payload carries.
        meta = json.dumps({"_arrays": {"dests": [64]}}).encode()
        payload = np.arange(8, dtype="<i8").tobytes()
        raw = HEADER.pack(MAGIC, 2, 0, 6, 0, len(meta), len(payload))
        header = unpack_header(raw)
        with pytest.raises(WireFormatError, match="overrun"):
            decode_body(header, meta + payload)

    def test_leftover_payload_rejected(self):
        meta = json.dumps({"_arrays": {"dests": [4]}}).encode()
        payload = np.arange(8, dtype="<i8").tobytes()
        raw = HEADER.pack(MAGIC, 2, 0, 6, 0, len(meta), len(payload))
        header = unpack_header(raw)
        with pytest.raises(WireFormatError, match="left over"):
            decode_body(header, meta + payload)


class TestHostileSocket:
    """Hostile bytes against a live server: stable slugs, no hangs."""

    pytestmark = pytest.mark.asyncio_suite

    async def _start(self):
        gateway = await AsyncGateway(
            GatewayConfig(m=3, planes=1, queue_capacity=8)
        ).start()
        server = await GatewayServer(gateway).start()
        return gateway, server

    def test_garbage_magic_falls_back_to_bad_request(self, run_async):
        async def scenario():
            gateway, server = await self._start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # First byte is not the magic's first byte and not '{':
                # the sniffer routes it to the JSON path, which answers
                # a clean bad-request instead of hanging.
                writer.write(b"Xtotal garbage\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return response
            finally:
                await server.stop()
                await gateway.stop()

        response = run_async(scenario())
        assert response["ok"] is False
        assert response["error"] == "bad-request"

    def test_magic_prefix_then_garbage_header_closes_with_error(
        self, run_async
    ):
        async def scenario():
            gateway, server = await self._start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # A valid magic then an oversize length field: one
                # binary error frame, then the server hangs up (after a
                # desync there is no trustworthy frame boundary).
                writer.write(
                    HEADER.pack(MAGIC, 2, 0, 1, 7, MAX_FRAME_BYTES, 8)
                )
                await writer.drain()
                raw = await reader.readexactly(HEADER.size)
                header = unpack_header(raw)
                body = await reader.readexactly(header.body_len)
                response = decode_body(header, body)
                trailing = await reader.read()
                writer.close()
                await writer.wait_closed()
                return header, response, trailing
            finally:
                await server.stop()
                await gateway.stop()

        header, response, trailing = run_async(scenario())
        assert header.opcode == 0  # the error opcode
        assert response["ok"] is False
        assert response["error"] == "bad-request"
        assert trailing == b""  # connection closed after the error frame

    def test_unknown_opcode_bad_request(self, run_async):
        async def scenario():
            gateway, server = await self._start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(encode_frame(999, {}, request_id=3))
                await writer.drain()
                raw = await reader.readexactly(HEADER.size)
                header = unpack_header(raw)
                response = decode_body(
                    header, await reader.readexactly(header.body_len)
                )
                writer.close()
                await writer.wait_closed()
                return response
            finally:
                await server.stop()
                await gateway.stop()

        response = run_async(scenario())
        assert response["ok"] is False
        assert response["error"] == "bad-request"
        assert "opcode" in response["detail"]
        assert response["id"] == 3

    def test_newer_major_version_refused(self, run_async):
        async def scenario():
            gateway, server = await self._start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    encode_frame(1, {}, request_id=9, version=(9, 0))
                )
                await writer.drain()
                raw = await reader.readexactly(HEADER.size)
                header = unpack_header(raw)
                response = decode_body(
                    header, await reader.readexactly(header.body_len)
                )
                writer.close()
                await writer.wait_closed()
                return response
            finally:
                await server.stop()
                await gateway.stop()

        response = run_async(scenario())
        assert response["ok"] is False
        assert response["error"] == "unsupported-version"
        assert response["protocol_version"] == list(PROTOCOL_VERSION)


class TestFramingParity:
    """JSON and binary are interchangeable transports for every op."""

    pytestmark = pytest.mark.asyncio_suite

    def test_differential_op_results(self, run_async):
        async def one_framing(port, binary):
            async with GatewayClient(
                "127.0.0.1", port, binary=binary
            ) as client:
                results = {}
                results["hello"] = await client.hello()
                results["ping"] = await client.ping()
                send = await client.send(3, payload="w", server_retry=True)
                # Latency and frame tag depend on arrival cycle, not
                # on the framing; drop the timing fields.
                results["send"] = {
                    key: send[key] for key in ("ok", "op", "dest", "mode")
                }
                batch = await client.send_batch(
                    np.arange(8, dtype=np.int64), retry=4
                )
                results["send_batch"] = {
                    "ok": batch["ok"],
                    "count": batch["count"],
                    "delivered": batch["delivered"],
                    "rejected": batch["rejected"],
                    "statuses": batch["statuses"].tolist(),
                    "mode_table": batch["mode_table"],
                }
                try:
                    await client.request("send", dest="nope")
                except Exception as error:  # GatewayRequestError
                    results["bad_send"] = {
                        "slug": error.slug,
                        "ok": error.response["ok"],
                    }
                try:
                    await client.metrics()
                except Exception as error:
                    results["metrics"] = {"slug": error.slug}
                return jsonable(results)

        async def scenario():
            gateway = await AsyncGateway(
                GatewayConfig(m=3, planes=1, queue_capacity=8)
            ).start()
            server = await GatewayServer(gateway).start()
            try:
                via_json = await one_framing(server.port, binary=False)
                via_binary = await one_framing(server.port, binary=True)
            finally:
                await server.stop()
                await gateway.stop()
            return via_json, via_binary

        via_json, via_binary = run_async(scenario())
        # ids differ per connection; everything else must match exactly.
        for results in (via_json, via_binary):
            for value in results.values():
                if isinstance(value, dict):
                    value.pop("id", None)
        assert via_json == via_binary
