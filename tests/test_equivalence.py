"""Tests for graph-based topological equivalence (Wu & Feng's class)."""

import pytest

from repro.topology import (
    MultistageNetwork,
    baseline_network,
    butterfly_network,
    identity_connection,
    network_graph,
    omega_network,
    topologically_equivalent,
)


class TestGraphConstruction:
    def test_node_counts(self):
        net = baseline_network(8)
        graph = network_graph(net)
        # 8 inputs + 8 outputs + 3 stages * 4 switches.
        assert graph.number_of_nodes() == 8 + 8 + 12

    def test_edge_counts(self):
        net = baseline_network(8)
        graph = network_graph(net)
        # 8 input wires + 2 * 8 interstage wires + 8 output wires.
        assert graph.number_of_edges() == 8 + 16 + 8


class TestEquivalence:
    def test_baseline_equivalent_to_omega(self):
        assert topologically_equivalent(baseline_network(8), omega_network(8))

    def test_baseline_equivalent_to_butterfly(self):
        assert topologically_equivalent(
            baseline_network(8), butterfly_network(8)
        )

    def test_reflexive(self):
        net = omega_network(16)
        assert topologically_equivalent(net, omega_network(16))

    def test_different_sizes_not_equivalent(self):
        assert not topologically_equivalent(
            baseline_network(8), baseline_network(16)
        )

    def test_scrambled_wiring_not_equivalent(self):
        """A network whose middle wiring fuses switch pairs differently
        enough is not isomorphic to the baseline."""
        # Straight-through wiring makes each switch pair a disconnected
        # 2-line tube: clearly not the baseline's connected butterfly.
        tube = MultistageNetwork(
            n=8,
            stage_count=3,
            wirings=[identity_connection(8), identity_connection(8)],
            name="tube",
        )
        assert not topologically_equivalent(baseline_network(8), tube)
