"""Statistical bias tests on routing behaviour."""

import pytest

from repro.analysis.distributions import (
    exchange_count_dispersion,
    first_stage_control_bias,
    output_position_uniformity,
)


class TestControlBias:
    def test_controls_are_fair_coins(self):
        report = first_stage_control_bias(3, samples=150, seed=0)
        assert report.observations == 150 * 4
        assert report.unbiased_at(alpha=0.01), report

    def test_report_fields(self):
        report = first_stage_control_bias(3, samples=20, seed=1)
        assert report.statistic >= 0
        assert 0 <= report.p_value <= 1


class TestOutputUniformity:
    def test_uniform_over_outputs(self):
        report = output_position_uniformity(3, input_line=0, samples=320, seed=2)
        assert report.unbiased_at(alpha=0.01), report

    def test_other_input_lines(self):
        report = output_position_uniformity(3, input_line=5, samples=320, seed=3)
        assert report.unbiased_at(alpha=0.01), report


class TestDispersion:
    def test_moments(self):
        stats = exchange_count_dispersion(3, samples=60, seed=4)
        # 36 decision switches at N=8; mean near half of them.
        assert 10 < stats["mean"] < 26
        assert stats["variance"] > 0
        assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_deterministic_given_seed(self):
        a = exchange_count_dispersion(3, samples=30, seed=7)
        b = exchange_count_dispersion(3, samples=30, seed=7)
        assert a == b
