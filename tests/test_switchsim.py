"""Packet-level switch simulation tests (HOL blocking vs VOQ)."""

import pytest

from repro.sim import SwitchSimulator


class TestBasics:
    def test_no_load_no_packets(self):
        sim = SwitchSimulator(3, seed=1)
        stats = sim.run(50, load=0.0)
        assert stats.delivered == 0
        assert stats.offered == 0
        assert stats.throughput == 0.0

    def test_light_load_delivers_everything(self):
        for mode in ("fifo", "voq"):
            sim = SwitchSimulator(4, mode=mode, seed=2)
            stats = sim.run(300, load=0.2)
            # Throughput tracks offered load almost exactly.
            assert stats.throughput == pytest.approx(stats.offered_load, abs=0.02)
            assert stats.mean_latency < 2.0

    def test_packets_only_reach_their_destination(self):
        sim = SwitchSimulator(3, mode="fifo", seed=3)
        sim.run(100, load=0.6)
        for packet in sim.delivered:
            assert packet.delivered_cycle is not None
            assert packet.delivered_cycle >= packet.arrived_cycle

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            SwitchSimulator(3, mode="crossbar")

    def test_load_validation(self):
        sim = SwitchSimulator(2)
        with pytest.raises(ValueError):
            sim.step(load=1.5)
        with pytest.raises(ValueError):
            sim.run(0, load=0.5)


class TestHOLBlocking:
    def test_fifo_saturates_below_full(self):
        """The classic input-queued result: FIFO HOL blocking caps the
        throughput near 2 - sqrt(2) ~ 0.586 under uniform overload."""
        sim = SwitchSimulator(4, mode="fifo", seed=5)
        stats = sim.run(500, load=1.0)
        assert 0.5 < stats.throughput < 0.72

    def test_voq_sustains_high_load(self):
        sim = SwitchSimulator(4, mode="voq", seed=5)
        stats = sim.run(500, load=1.0)
        assert stats.throughput > 0.85

    def test_voq_beats_fifo_at_saturation(self):
        fifo = SwitchSimulator(4, mode="fifo", seed=7).run(400, load=1.0)
        voq = SwitchSimulator(4, mode="voq", seed=7).run(400, load=1.0)
        assert voq.throughput > fifo.throughput + 0.15
        assert voq.mean_latency < fifo.mean_latency

    def test_fifo_queues_grow_at_overload(self):
        sim = SwitchSimulator(4, mode="fifo", seed=9)
        stats = sim.run(400, load=1.0)
        # Saturated FIFO queues grow roughly linearly with time.
        assert stats.max_queue_depth > 50

    def test_hol_saturation_decreases_toward_asymptote(self):
        """Karol et al.: FIFO saturation throughput falls with N toward
        2 - sqrt(2) ~ 0.586.  The simulated trend must be monotone and
        stay above the asymptote at these sizes."""
        throughputs = {}
        for m in (2, 3, 4):
            sim = SwitchSimulator(m, mode="fifo", seed=31)
            throughputs[m] = sim.run(600, load=1.0).throughput
        assert throughputs[2] > throughputs[3] > throughputs[4]
        assert all(tp > 0.58 for tp in throughputs.values())


class TestDeterminism:
    def test_same_seed_same_run(self):
        a = SwitchSimulator(3, mode="voq", seed=11).run(200, load=0.7)
        b = SwitchSimulator(3, mode="voq", seed=11).run(200, load=0.7)
        assert a.delivered == b.delivered
        assert a.mean_latency == b.mean_latency

    def test_different_seeds_differ(self):
        a = SwitchSimulator(3, mode="voq", seed=1).run(200, load=0.7)
        b = SwitchSimulator(3, mode="voq", seed=2).run(200, load=0.7)
        assert a.offered != b.offered or a.mean_latency != b.mean_latency
