"""BIST probe schedules: coverage, determinism, detection guarantee."""

import pytest

from repro.core import BNBNetwork
from repro.exceptions import FaultError
from repro.faults import (
    BISTSchedule,
    build_bist_schedule,
    candidate_probe_stream,
    enumerate_switch_coordinates,
)


@pytest.fixture(scope="module", params=[2, 3])
def schedule(request):
    return build_bist_schedule(request.param)


class TestCandidateStream:
    def test_starts_with_identity_and_reversal(self):
        stream = candidate_probe_stream(3)
        assert next(stream) == list(range(8))
        assert next(stream) == list(reversed(range(8)))

    def test_deterministic(self):
        a = candidate_probe_stream(3)
        b = candidate_probe_stream(3)
        for _ in range(10):
            assert next(a) == next(b)

    def test_yields_permutations(self):
        stream = candidate_probe_stream(2)
        for _ in range(10):
            assert sorted(next(stream)) == list(range(4))


class TestScheduleConstruction:
    def test_probes_are_permutations(self, schedule):
        for probe in schedule.probes:
            assert sorted(probe.addresses) == list(range(schedule.n))

    def test_deterministic_build(self, schedule):
        again = build_bist_schedule(schedule.m)
        assert [p.addresses for p in again.probes] == [
            p.addresses for p in schedule.probes
        ]

    def test_probe_count_small(self, schedule):
        """A handful of probes certifies all O(N log^2 N) switches —
        far fewer than the 2 * switch_count faults they cover."""
        faults = 2 * len(enumerate_switch_coordinates(schedule.m))
        assert schedule.probe_count < faults // 2

    def test_controls_match_healthy_route(self, schedule):
        """Cached control tables agree with a fresh healthy route."""
        from repro.core import Word
        from repro.faults import extract_controls

        probe = schedule.probes[0]
        words = [
            Word(address=a, payload=j) for j, a in enumerate(probe.addresses)
        ]
        _outputs, record = BNBNetwork(schedule.m).route(words, record=True)
        assert extract_controls(record) == probe.controls

    def test_rejects_bad_m(self):
        with pytest.raises(FaultError):
            build_bist_schedule(0)

    def test_exhaustion_raises(self):
        """An impossible candidate budget fails loudly, not silently."""
        with pytest.raises(FaultError, match="coverage incomplete"):
            build_bist_schedule(3, max_candidates=1)


class TestCoverage:
    def test_both_values_of_every_switch(self, schedule):
        assert schedule.uncovered() == []

    def test_coverage_maps_every_hypothesis(self, schedule):
        coverage = schedule.coverage()
        coordinates = enumerate_switch_coordinates(schedule.m)
        assert len(coverage) == 2 * len(coordinates)
        assert all(hits for hits in coverage.values())

    def test_skipping_detection_phase_still_covers(self):
        schedule = build_bist_schedule(3, ensure_detection=False)
        assert schedule.uncovered() == []


class TestDetectionGuarantee:
    def test_every_fault_detected(self, schedule):
        """ensure_detection=True means every single stuck-at fault has
        a probe with a visible adaptive syndrome."""
        for coordinate in enumerate_switch_coordinates(schedule.m):
            for value in (0, 1):
                assert schedule.detects(coordinate, value) is not None

    def test_healthy_fabric_runs_clean(self, schedule):
        observations = schedule.run(
            lambda words: BNBNetwork(schedule.m).route(words)[0]
        )
        assert all(observation.clean for observation in observations)

    def test_run_checks_output_width(self, schedule):
        with pytest.raises(FaultError, match="outputs"):
            schedule.run(lambda words: words[:-1])


def test_manual_schedule_reports_uncovered():
    """A hand-built single-probe schedule knows what it misses."""
    full = build_bist_schedule(2, ensure_detection=False)
    thin = BISTSchedule(m=2, probes=full.probes[:1])
    assert thin.uncovered()  # one probe cannot drive both values anywhere
