"""BIST probe schedules: coverage, determinism, detection guarantee."""

import pytest

from repro.core import BNBNetwork
from repro.exceptions import FaultError
from repro.faults import (
    BISTSchedule,
    build_bist_schedule,
    candidate_probe_stream,
    enumerate_switch_coordinates,
)


@pytest.fixture(scope="module", params=[2, 3])
def schedule(request):
    return build_bist_schedule(request.param)


class TestCandidateStream:
    def test_starts_with_identity_and_reversal(self):
        stream = candidate_probe_stream(3)
        assert next(stream) == list(range(8))
        assert next(stream) == list(reversed(range(8)))

    def test_deterministic(self):
        a = candidate_probe_stream(3)
        b = candidate_probe_stream(3)
        for _ in range(10):
            assert next(a) == next(b)

    def test_yields_permutations(self):
        stream = candidate_probe_stream(2)
        for _ in range(10):
            assert sorted(next(stream)) == list(range(4))


class TestScheduleConstruction:
    def test_probes_are_permutations(self, schedule):
        for probe in schedule.probes:
            assert sorted(probe.addresses) == list(range(schedule.n))

    def test_deterministic_build(self, schedule):
        again = build_bist_schedule(schedule.m)
        assert [p.addresses for p in again.probes] == [
            p.addresses for p in schedule.probes
        ]

    def test_probe_count_small(self, schedule):
        """A handful of probes certifies all O(N log^2 N) switches —
        far fewer than the 2 * switch_count faults they cover."""
        faults = 2 * len(enumerate_switch_coordinates(schedule.m))
        assert schedule.probe_count < faults // 2

    def test_controls_match_healthy_route(self, schedule):
        """Cached control tables agree with a fresh healthy route."""
        from repro.core import Word
        from repro.faults import extract_controls

        probe = schedule.probes[0]
        words = [
            Word(address=a, payload=j) for j, a in enumerate(probe.addresses)
        ]
        _outputs, record = BNBNetwork(schedule.m).route(words, record=True)
        assert extract_controls(record) == probe.controls

    def test_rejects_bad_m(self):
        with pytest.raises(FaultError):
            build_bist_schedule(0)

    def test_exhaustion_raises(self):
        """An impossible candidate budget fails loudly, not silently."""
        with pytest.raises(FaultError, match="coverage incomplete"):
            build_bist_schedule(3, max_candidates=1)


class TestCoverage:
    def test_both_values_of_every_switch(self, schedule):
        assert schedule.uncovered() == []

    def test_coverage_maps_every_hypothesis(self, schedule):
        coverage = schedule.coverage()
        coordinates = enumerate_switch_coordinates(schedule.m)
        assert len(coverage) == 2 * len(coordinates)
        assert all(hits for hits in coverage.values())

    def test_skipping_detection_phase_still_covers(self):
        schedule = build_bist_schedule(3, ensure_detection=False)
        assert schedule.uncovered() == []


class TestDetectionGuarantee:
    def test_every_fault_detected(self, schedule):
        """ensure_detection=True means every single stuck-at fault has
        a probe with a visible adaptive syndrome."""
        for coordinate in enumerate_switch_coordinates(schedule.m):
            for value in (0, 1):
                assert schedule.detects(coordinate, value) is not None

    def test_healthy_fabric_runs_clean(self, schedule):
        observations = schedule.run(
            lambda words: BNBNetwork(schedule.m).route(words)[0]
        )
        assert all(observation.clean for observation in observations)

    def test_run_checks_output_width(self, schedule):
        with pytest.raises(FaultError, match="outputs"):
            schedule.run(lambda words: words[:-1])


def test_manual_schedule_reports_uncovered():
    """A hand-built single-probe schedule knows what it misses."""
    full = build_bist_schedule(2, ensure_detection=False)
    thin = BISTSchedule(m=2, probes=full.probes[:1])
    assert thin.uncovered()  # one probe cannot drive both values anywhere


class TestRelaxedCoverage:
    """``require_full_coverage=False``: inert pairs at m >= 5."""

    def test_strict_build_still_raises_at_m5(self):
        with pytest.raises(FaultError, match="coverage incomplete"):
            build_bist_schedule(5, ensure_detection=False, max_candidates=64)

    def test_small_m_builds_have_no_inert_pairs(self):
        for m in (2, 3):
            assert build_bist_schedule(m, ensure_detection=False).inert == ()

    @pytest.mark.slow
    def test_m5_inert_pairs_are_the_boundary_switches(self):
        """The pairs the stream cannot activate are exactly the
        control-invariant boundary switches: the first box of a final
        inner stage always steers 0, the last always 1."""
        schedule = build_bist_schedule(
            5,
            ensure_detection=False,
            require_full_coverage=False,
            max_candidates=400,
        )
        assert schedule.uncovered() == sorted(schedule.inert)
        for coordinate, value in schedule.inert:
            width_exp = 5 - coordinate.main_stage - coordinate.nested_stage
            assert width_exp == 1  # always a width-2 (final) inner stage
            last_box = (1 << coordinate.nested_stage) - 1
            assert (coordinate.box, value) in ((0, 0), (last_box, 1))

    @pytest.mark.slow
    def test_inert_faults_never_displace_traffic(self):
        """An inert stuck fault is benign: the fabric routes every
        seeded permutation perfectly with the fault installed."""
        from repro.permutations import random_permutation

        schedule = build_bist_schedule(
            5,
            ensure_detection=False,
            require_full_coverage=False,
            max_candidates=400,
        )
        assert schedule.inert
        from repro.core import Word
        from repro.faults import route_with_stuck_switch

        for coordinate, value in schedule.inert:
            for seed in range(5):
                pi = random_permutation(32, rng=seed)
                words = [
                    Word(address=pi(j), payload=j) for j in range(32)
                ]
                outputs = route_with_stuck_switch(5, words, coordinate, value)
                assert [w.address for w in outputs] == list(range(32))
