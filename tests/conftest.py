"""Shared fixtures for the test suite."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.permutations import PermutationSampler

#: Hard wall for any one async test; a wedged event loop fails fast
#: instead of hanging the suite.
ASYNC_TEST_TIMEOUT = 60.0


@pytest.fixture
def rng():
    """A seeded RNG so tests are reproducible."""
    return random.Random(48107)


@pytest.fixture
def sampler8():
    """A seeded permutation sampler on 8 points."""
    return PermutationSampler(8, seed=8)


@pytest.fixture
def sampler16():
    """A seeded permutation sampler on 16 points."""
    return PermutationSampler(16, seed=16)


@pytest.fixture
def sampler64():
    """A seeded permutation sampler on 64 points."""
    return PermutationSampler(64, seed=64)


@pytest.fixture
def run_async():
    """Run a coroutine on a fresh event loop with a per-test timeout.

    The async suite runs on stock pytest: with ``pytest-asyncio``
    installed (the ``dev`` extra) its native mode also works, but
    nothing here requires the plugin — each test drives its coroutine
    through this fixture, and :func:`asyncio.wait_for` enforces the
    per-test deadline either way.
    """

    def _run(coro, timeout: float = ASYNC_TEST_TIMEOUT):
        async def _bounded():
            return await asyncio.wait_for(coro, timeout)

        return asyncio.run(_bounded())

    return _run


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running exhaustive checks (still run by default)"
    )
    config.addinivalue_line(
        "markers", "asyncio_suite: drives an asyncio event loop"
    )


def pytest_collection_modifyitems(config, items):
    # With pytest-timeout available (the dev extra), give every async
    # test a belt-and-braces process-level deadline on top of the
    # event-loop one from the run_async fixture.
    if not config.pluginmanager.hasplugin("timeout"):
        return
    for item in items:
        if item.get_closest_marker("asyncio_suite") is not None:
            item.add_marker(pytest.mark.timeout(ASYNC_TEST_TIMEOUT + 30))
