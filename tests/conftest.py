"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.permutations import PermutationSampler


@pytest.fixture
def rng():
    """A seeded RNG so tests are reproducible."""
    return random.Random(48107)


@pytest.fixture
def sampler8():
    """A seeded permutation sampler on 8 points."""
    return PermutationSampler(8, seed=8)


@pytest.fixture
def sampler16():
    """A seeded permutation sampler on 16 points."""
    return PermutationSampler(16, seed=16)


@pytest.fixture
def sampler64():
    """A seeded permutation sampler on 64 points."""
    return PermutationSampler(64, seed=64)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running exhaustive checks (still run by default)"
    )
