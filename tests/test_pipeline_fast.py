"""The vectorized pipelined fabric: same contract as the object engine."""

import numpy as np
import pytest

from repro.core import VectorPipelinedFabric, Word, route_frame_sources
from repro.core.pipeline import PipelinedBNBFabric
from repro.exceptions import NotAPermutationError
from repro.permutations import random_permutation


def _words(pi, tag):
    return [Word(address=a, payload=(tag, j)) for j, a in enumerate(pi)]


class TestBasicOperation:
    def test_single_batch_latency(self):
        """Fill latency is m + 1 cycles, exactly like the object engine."""
        m = 4
        fabric = VectorPipelinedFabric(m)
        fabric.offer(random_permutation(1 << m, rng=0).to_list(), tag="a")
        for cycle in range(m):
            assert fabric.step() == []
        completed = fabric.step()
        assert [tag for tag, _ in completed] == ["a"]
        assert fabric.stats().fill_latency == m + 1

    def test_delivery_sorted_with_payload_identity(self):
        m = 3
        fabric = VectorPipelinedFabric(m)
        pi = random_permutation(1 << m, rng=3).to_list()
        words = _words(pi, "t")
        outputs = fabric.route_batch(words, tag="t")
        assert [w.address for w in outputs] == list(range(1 << m))
        # The very objects offered come back, reordered — the serving
        # layer's boundary verification relies on `is` identity.
        for line, word in enumerate(outputs):
            assert word is words[pi.index(line)]

    def test_steady_state_throughput(self):
        m = 3
        fabric = VectorPipelinedFabric(m)
        for k in range(40):
            fabric.offer(
                random_permutation(1 << m, rng=k).to_list(), tag=k
            )
            fabric.step()
        completed = fabric.drain()
        stats = fabric.stats()
        assert stats.accepted == stats.delivered == 40
        assert fabric.delivered_count == 40
        assert completed  # drain returned the tail

    def test_bubbles_pass_through(self):
        fabric = VectorPipelinedFabric(2)
        fabric.offer([1, 0, 3, 2], tag="x")
        fabric.step()
        fabric.idle(5)  # bubbles must not disturb the in-flight batch
        assert fabric.delivered_count == 1


class TestSurfaceParity:
    def test_try_offer_words_backpressure(self):
        fabric = VectorPipelinedFabric(2)
        words = _words([3, 1, 0, 2], "a")
        assert fabric.can_accept
        assert fabric.try_offer_words(words, tag="a")
        assert not fabric.can_accept
        assert not fabric.try_offer_words(_words([0, 1, 2, 3], "b"), tag="b")
        with pytest.raises(ValueError):
            fabric.offer_words(_words([0, 1, 2, 3], "c"), tag="c")

    def test_try_offer_still_validates(self):
        fabric = VectorPipelinedFabric(2)
        with pytest.raises(NotAPermutationError):
            fabric.try_offer_words(_words([0, 0, 1, 2], "bad"), tag="bad")

    def test_non_permutation_rejected(self):
        fabric = VectorPipelinedFabric(2)
        with pytest.raises(NotAPermutationError):
            fabric.offer([0, 0, 1, 2])
        with pytest.raises(NotAPermutationError):
            fabric.offer([0, 1, 2])  # short batch

    def test_size_validation(self):
        with pytest.raises(ValueError):
            VectorPipelinedFabric(0)

    def test_delivery_hooks_fire_in_order(self):
        fabric = VectorPipelinedFabric(2)
        seen = []
        fabric.add_delivery_hook(lambda tag, outs: seen.append((tag, "h1")))
        fabric.add_delivery_hook(lambda tag, outs: seen.append((tag, "h2")))
        fabric.offer([1, 0, 3, 2], tag="a")
        fabric.step()
        fabric.offer([2, 3, 0, 1], tag="b")
        fabric.drain()
        assert seen == [("a", "h1"), ("a", "h2"), ("b", "h1"), ("b", "h2")]

    def test_retain_delivered_false_bounds_memory(self):
        fabric = VectorPipelinedFabric(2, retain_delivered=False)
        for k in range(10):
            fabric.offer([1, 0, 3, 2], tag=k)
            fabric.step()
        fabric.drain()
        assert fabric.delivered_batches == []
        assert fabric.delivered_count == 10

    def test_route_batch_requires_idle_fabric(self):
        fabric = VectorPipelinedFabric(2)
        fabric.offer([0, 1, 2, 3], tag="in-flight")
        fabric.step()
        with pytest.raises(ValueError):
            fabric.route_batch(_words([1, 0, 3, 2], "late"), tag="late")


class TestEquivalence:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5])
    def test_matches_object_engine_cycle_for_cycle(self, m):
        """Identical offer/step schedules produce identical per-cycle
        deliveries, down to address and payload order."""
        n = 1 << m
        obj = PipelinedBNBFabric(m)
        vec = VectorPipelinedFabric(m)
        for k in range(3 * m + 4):
            if k % 3 != 2:  # leave bubbles in the schedule
                pi = random_permutation(n, rng=k).to_list()
                obj.offer_words(_words(pi, k), tag=k)
                vec.offer_words(_words(pi, k), tag=k)
            done_obj = obj.step()
            done_vec = vec.step()
            assert [
                (tag, [(w.address, w.payload) for w in outs])
                for tag, outs in done_obj
            ] == [
                (tag, [(w.address, w.payload) for w in outs])
                for tag, outs in done_vec
            ]
        assert obj.drain() and vec.drain() or True  # both drain clean
        assert obj.stats().latencies == vec.stats().latencies


class TestRouteFrameSources:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6])
    def test_sources_invert_the_permutation(self, m):
        """Output line d receives the input line that addressed d."""
        n = 1 << m
        for seed in range(5):
            pi = random_permutation(n, rng=seed).to_list()
            sources = route_frame_sources(m, np.array(pi))
            assert [pi[source] for source in sources.tolist()] == list(
                range(n)
            )
