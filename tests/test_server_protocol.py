"""The JSON-lines TCP protocol: framing, ops, error mapping."""

import asyncio
import json

import pytest

from repro.server import AsyncGateway, GatewayConfig, GatewayServer

pytestmark = pytest.mark.asyncio_suite


async def start_stack(m=3, planes=1, capacity=8):
    gateway = await AsyncGateway(
        GatewayConfig(m=m, planes=planes, queue_capacity=capacity)
    ).start()
    server = await GatewayServer(gateway).start()
    return gateway, server


async def request_lines(port, lines, expect):
    """Send raw lines, collect *expect* JSON responses (any order)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b"".join(lines))
    await writer.drain()
    responses = []
    for _ in range(expect):
        responses.append(json.loads(await reader.readline()))
    writer.close()
    await writer.wait_closed()
    return responses


class TestOps:
    def test_ping_send_stats_round_trip(self, run_async):
        async def scenario():
            gateway, server = await start_stack()
            try:
                responses = await request_lines(
                    server.port,
                    [
                        b'{"op": "ping", "id": 1}\n',
                        b'{"op": "send", "dest": 5, "payload": "w", '
                        b'"retry": true, "id": 2}\n',
                        b'{"op": "stats", "id": 3}\n',
                    ],
                    expect=3,
                )
            finally:
                await server.stop()
                await gateway.stop()
            return {response["id"]: response for response in responses}

        by_id = run_async(scenario())
        assert by_id[1] == {"ok": True, "op": "ping", "id": 1}
        assert by_id[2]["ok"] is True
        assert by_id[2]["dest"] == 5
        assert by_id[2]["latency_cycles"] >= 1
        assert by_id[2]["mode"] == "clean"
        # Requests on one connection run concurrently, so the stats
        # snapshot may precede the send's delivery — assert shape only.
        assert by_id[3]["stats"]["n"] == 8
        assert "queues" in by_id[3]["stats"]

    def test_many_connections_zero_misdelivery(self, run_async):
        async def one_client(port, cid):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            deliveries = []
            for k in range(3):
                dest = (cid + k) % 8
                writer.write(
                    (
                        json.dumps(
                            {
                                "op": "send",
                                "dest": dest,
                                "retry": True,
                                "id": k,
                            }
                        )
                        + "\n"
                    ).encode()
                )
                await writer.drain()
                response = json.loads(await reader.readline())
                deliveries.append((dest, response))
            writer.close()
            await writer.wait_closed()
            return deliveries

        async def scenario():
            gateway, server = await start_stack(planes=2, capacity=16)
            try:
                results = await asyncio.gather(
                    *(one_client(server.port, cid) for cid in range(25))
                )
            finally:
                await server.stop()
                await gateway.stop()
            return results

        results = run_async(scenario())
        for deliveries in results:
            for dest, response in deliveries:
                assert response["ok"] is True
                assert response["dest"] == dest

    def test_concurrent_requests_one_connection_by_id(self, run_async):
        async def scenario():
            gateway, server = await start_stack()
            try:
                responses = await request_lines(
                    server.port,
                    [
                        json.dumps(
                            {"op": "send", "dest": d, "retry": True, "id": d}
                        ).encode()
                        + b"\n"
                        for d in range(8)
                    ],
                    expect=8,
                )
            finally:
                await server.stop()
                await gateway.stop()
            return responses

        responses = run_async(scenario())
        assert sorted(response["id"] for response in responses) == list(
            range(8)
        )
        assert all(
            response["dest"] == response["id"] for response in responses
        )


class TestErrors:
    def test_error_responses(self, run_async):
        async def scenario():
            gateway, server = await start_stack()
            try:
                responses = await request_lines(
                    server.port,
                    [
                        b"this is not json\n",
                        b'["not", "an", "object"]\n',
                        b'{"op": "warp", "id": 1}\n',
                        b'{"op": "send", "dest": "three", "id": 2}\n',
                        b'{"op": "send", "dest": 99, "id": 3}\n',
                    ],
                    expect=5,
                )
            finally:
                await server.stop()
                await gateway.stop()
            return responses

        responses = run_async(scenario())
        assert all(response["ok"] is False for response in responses)
        assert all(
            response["error"] == "bad-request" for response in responses
        )

    def test_admission_reject_maps_to_retry_hint(self, run_async):
        async def scenario():
            gateway, server = await start_stack(capacity=1)
            rejected = []
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                for k in range(20):
                    writer.write(
                        (
                            json.dumps({"op": "send", "dest": 2, "id": k})
                            + "\n"
                        ).encode()
                    )
                await writer.drain()
                for _ in range(20):
                    response = json.loads(await reader.readline())
                    if not response["ok"]:
                        rejected.append(response)
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
                await gateway.stop()
            return rejected

        rejected = run_async(scenario())
        assert rejected  # flooding a 1-deep queue must bounce something
        for response in rejected:
            assert response["error"] == "admission-rejected"
            assert response["retry_after_cycles"] >= 1
