"""The dual-framing TCP protocol: ops, error mapping, auto-detection.

Round-trip traffic speaks through the public
:class:`repro.client.GatewayClient` (both framings); only the
malformed-input tests keep raw sockets, because the client cannot be
made to emit broken requests.
"""

import asyncio
import json

import pytest

from repro.client import GatewayClient
from repro.server import AsyncGateway, GatewayConfig, GatewayServer

pytestmark = pytest.mark.asyncio_suite


async def start_stack(m=3, planes=1, capacity=8):
    gateway = await AsyncGateway(
        GatewayConfig(m=m, planes=planes, queue_capacity=capacity)
    ).start()
    server = await GatewayServer(gateway).start()
    return gateway, server


async def request_lines(port, lines, expect):
    """Send raw lines, collect *expect* JSON responses (any order)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b"".join(lines))
    await writer.drain()
    responses = []
    for _ in range(expect):
        responses.append(json.loads(await reader.readline()))
    writer.close()
    await writer.wait_closed()
    return responses


class TestOps:
    @pytest.mark.parametrize("binary", [False, True])
    def test_ping_send_stats_round_trip(self, run_async, binary):
        async def scenario():
            gateway, server = await start_stack()
            try:
                async with GatewayClient(
                    "127.0.0.1", server.port, binary=binary
                ) as client:
                    pong = await client.ping()
                    receipt = await client.send(
                        5, payload="w", server_retry=True
                    )
                    stats = await client.stats()
            finally:
                await server.stop()
                await gateway.stop()
            return pong, receipt, stats

        pong, receipt, stats = run_async(scenario())
        assert pong["ok"] is True and pong["op"] == "ping"
        assert receipt["dest"] == 5
        assert receipt["latency_cycles"] >= 1
        assert receipt["mode"] == "clean"
        assert stats["stats"]["n"] == 8
        assert "queues" in stats["stats"]
        assert stats["protocol_version"] == [2, 0]

    def test_many_connections_zero_misdelivery(self, run_async):
        async def one_client(port, cid):
            # Alternate framings across the client fleet.
            async with GatewayClient(
                "127.0.0.1", port, binary=bool(cid % 2)
            ) as client:
                deliveries = []
                for k in range(3):
                    dest = (cid + k) % 8
                    response = await client.send(dest, server_retry=True)
                    deliveries.append((dest, response))
                return deliveries

        async def scenario():
            gateway, server = await start_stack(planes=2, capacity=16)
            try:
                results = await asyncio.gather(
                    *(one_client(server.port, cid) for cid in range(25))
                )
            finally:
                await server.stop()
                await gateway.stop()
            return results

        results = run_async(scenario())
        for deliveries in results:
            for dest, response in deliveries:
                assert response["ok"] is True
                assert response["dest"] == dest

    @pytest.mark.parametrize("binary", [False, True])
    def test_concurrent_requests_one_connection_by_id(
        self, run_async, binary
    ):
        async def scenario():
            gateway, server = await start_stack()
            try:
                async with GatewayClient(
                    "127.0.0.1", server.port, binary=binary
                ) as client:
                    responses = await asyncio.gather(
                        *(
                            client.send(d, server_retry=True)
                            for d in range(8)
                        )
                    )
            finally:
                await server.stop()
                await gateway.stop()
            return responses

        responses = run_async(scenario())
        assert sorted(response["dest"] for response in responses) == list(
            range(8)
        )


class TestErrors:
    def test_error_responses(self, run_async):
        async def scenario():
            gateway, server = await start_stack()
            try:
                responses = await request_lines(
                    server.port,
                    [
                        b"this is not json\n",
                        b'["not", "an", "object"]\n',
                        b'{"op": "warp", "id": 1}\n',
                        b'{"op": "send", "dest": "three", "id": 2}\n',
                        b'{"op": "send", "dest": 99, "id": 3}\n',
                    ],
                    expect=5,
                )
            finally:
                await server.stop()
                await gateway.stop()
            return responses

        responses = run_async(scenario())
        assert all(response["ok"] is False for response in responses)
        assert all(
            response["error"] == "bad-request" for response in responses
        )

    def test_admission_reject_maps_to_retry_hint(self, run_async):
        async def scenario():
            gateway, server = await start_stack(capacity=1)
            rejected = []
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                for k in range(20):
                    writer.write(
                        (
                            json.dumps({"op": "send", "dest": 2, "id": k})
                            + "\n"
                        ).encode()
                    )
                await writer.drain()
                for _ in range(20):
                    response = json.loads(await reader.readline())
                    if not response["ok"]:
                        rejected.append(response)
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
                await gateway.stop()
            return rejected

        rejected = run_async(scenario())
        assert rejected  # flooding a 1-deep queue must bounce something
        for response in rejected:
            assert response["error"] == "admission-rejected"
            assert response["retry_after_cycles"] >= 1
