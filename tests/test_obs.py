"""The observability layer: registry, tracing, instrumentation, JSON.

Golden-output tests pin the Prometheus text and JSON snapshot formats
exactly — exposition is an external contract (scrapers parse it), so a
formatting drift must fail loudly, not silently reshape dashboards.
"""

import json
import math

import pytest

from repro.exceptions import AdmissionRejectedError
from repro.obs import (
    CYCLE_BUCKETS,
    Counter,
    FrameTracer,
    Gauge,
    GatewayInstrumentation,
    Histogram,
    Registry,
    get_registry,
    set_registry,
)
from repro.obs.snapshot import dump_json, sanitize
from repro.server import AsyncGateway, GatewayConfig, QueueEntry


class TestRegistrySemantics:
    def test_counter_monotonic(self):
        counter = Registry().counter("repro_t_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_sync_mirrors_and_enforces(self):
        counter = Registry().counter("repro_t_total")
        counter.sync(10)
        counter.sync(10)  # no movement is fine
        counter.sync(12)
        assert counter.value == 12
        with pytest.raises(ValueError):
            counter.sync(11)

    def test_gauge_goes_anywhere(self):
        gauge = Registry().gauge("repro_depth")
        gauge.set(5)
        gauge.dec(7)
        gauge.inc(1)
        assert gauge.value == -1

    def test_labels_are_independent_series(self):
        counter = Registry().counter("repro_t_total", labelnames=("plane",))
        counter.labels("0").inc()
        counter.labels("1").inc(2)
        counter.labels(plane="0").inc()  # keyword form, same series
        assert counter.labels("0").value == 2
        assert counter.labels("1").value == 2

    def test_labelled_metric_rejects_bare_instrument_calls(self):
        counter = Registry().counter("repro_t_total", labelnames=("plane",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.labels("0", "1")
        with pytest.raises(ValueError):
            counter.labels(wrong="0")

    def test_declare_is_create_or_return(self):
        registry = Registry()
        first = registry.counter("repro_t_total", labelnames=("a",))
        again = registry.counter("repro_t_total", labelnames=("a",))
        assert first is again
        with pytest.raises(ValueError):
            registry.gauge("repro_t_total")  # type mismatch
        with pytest.raises(ValueError):
            registry.counter("repro_t_total", labelnames=("b",))

    def test_metric_name_validation(self):
        registry = Registry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("1leading")
        with pytest.raises(ValueError):
            registry.counter("")

    def test_collectors_run_on_every_scrape(self):
        registry = Registry()
        gauge = registry.gauge("repro_live")
        calls = []
        registry.register_collector(lambda: (calls.append(1), gauge.set(len(calls))))
        registry.snapshot()
        registry.render_prometheus()
        assert len(calls) == 2
        assert gauge.value == 2

    def test_global_registry_swap(self):
        fresh = Registry()
        old = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(old)
        assert get_registry() is old


class TestHistogramBucketing:
    def test_observations_land_in_first_fitting_bucket(self):
        hist = Registry().histogram("repro_h_cycles", buckets=(1.0, 4.0, 16.0))
        for value in (0.5, 1.0, 3, 16, 17):
            hist.observe(value)
        child = hist.labels()
        assert child.counts == [2, 1, 1, 1]  # (<=1, <=4, <=16, +Inf)
        assert child.count == 5
        assert child.sum == pytest.approx(37.5)

    def test_bucket_bounds_validated(self):
        registry = Registry()
        with pytest.raises(ValueError):
            registry.histogram("repro_h", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("repro_h", buckets=(1.0, 1.0))

    def test_default_buckets_cover_cycle_range(self):
        hist = Registry().histogram("repro_h_cycles")
        assert hist.bounds == CYCLE_BUCKETS


class TestGoldenOutputs:
    @pytest.fixture
    def registry(self):
        registry = Registry()
        counter = registry.counter(
            "repro_t_total", "Things done.", labelnames=("kind",)
        )
        counter.labels("a").inc()
        counter.labels("b").inc(2)
        registry.gauge("repro_depth", "Queue depth.").set(3)
        hist = registry.histogram(
            "repro_lat_cycles", "Latency.", buckets=(1.0, 2.0)
        )
        hist.observe(1)
        hist.observe(5)
        return registry

    def test_prometheus_text(self, registry):
        assert registry.render_prometheus() == (
            "# HELP repro_depth Queue depth.\n"
            "# TYPE repro_depth gauge\n"
            "repro_depth 3\n"
            "# HELP repro_lat_cycles Latency.\n"
            "# TYPE repro_lat_cycles histogram\n"
            'repro_lat_cycles_bucket{le="1"} 1\n'
            'repro_lat_cycles_bucket{le="2"} 1\n'
            'repro_lat_cycles_bucket{le="+Inf"} 2\n'
            "repro_lat_cycles_sum 6\n"
            "repro_lat_cycles_count 2\n"
            "# HELP repro_t_total Things done.\n"
            "# TYPE repro_t_total counter\n"
            'repro_t_total{kind="a"} 1\n'
            'repro_t_total{kind="b"} 2\n'
        )

    def test_json_snapshot(self, registry):
        assert registry.snapshot() == {
            "repro_depth": {
                "type": "gauge",
                "help": "Queue depth.",
                "samples": [{"labels": {}, "value": 3.0}],
            },
            "repro_lat_cycles": {
                "type": "histogram",
                "help": "Latency.",
                "samples": [
                    {
                        "labels": {},
                        "buckets": [["1", 1], ["2", 0], ["+Inf", 1]],
                        "sum": 6.0,
                        "count": 2,
                    }
                ],
            },
            "repro_t_total": {
                "type": "counter",
                "help": "Things done.",
                "samples": [
                    {"labels": {"kind": "a"}, "value": 1.0},
                    {"labels": {"kind": "b"}, "value": 2.0},
                ],
            },
        }

    def test_label_escaping(self):
        registry = Registry()
        registry.counter("repro_t_total", labelnames=("k",)).labels(
            'a"b\\c\nd'
        ).inc()
        assert 'k="a\\"b\\\\c\\nd"' in registry.render_prometheus()


class TestSnapshotSerialization:
    def test_nan_and_inf_become_null(self):
        np = pytest.importorskip("numpy")
        payload = {
            "nan": float("nan"),
            "inf": float("inf"),
            "npnan": np.float64("nan"),
            "npint": np.int64(7),
            "arr": np.array([1, 2]),
            3: "int-key",
        }
        assert sanitize(payload) == {
            "nan": None,
            "inf": None,
            "npnan": None,
            "npint": 7,
            "arr": [1, 2],
            "3": "int-key",
        }

    def test_dump_json_is_strict(self):
        text = dump_json({"x": float("nan")}, indent=None)
        assert text == '{"x": null}'
        assert json.loads(text) == {"x": None}

    def test_non_serializable_falls_back_to_str(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert sanitize({"w": Weird()}) == {"w": "<weird>"}


class TestFrameTracer:
    def _dispatch(self, tracer, tag, cycle=5, plane=0):
        tracer.record_dispatch(
            tag,
            plane,
            cycle,
            words=3,
            fill=0.75,
            enqueued_cycle=cycle - 2,
            coalesced_cycle=cycle,
        )

    def test_stage_timeline_and_latency(self):
        tracer = FrameTracer(m=3, sample_every=1)
        self._dispatch(tracer, tag=0, cycle=5)
        tracer.record_delivery(0, cycle=8, mode="clean", latency_cycles=5)
        [record] = tracer.records()
        assert record["stage_cycles"] == [6, 7, 8]
        assert record["delivered_cycle"] == 8
        assert record["latency_cycles"] == 5
        assert record["mode"] == "clean"

    def test_sampling(self):
        tracer = FrameTracer(m=2, sample_every=4)
        for tag in range(16):
            self._dispatch(tracer, tag)
        assert tracer.traced_frames == 4  # tags 0, 4, 8, 12

    def test_ring_buffer_bounds_completed_records(self):
        tracer = FrameTracer(m=2, capacity=4, sample_every=1)
        for tag in range(10):
            self._dispatch(tracer, tag)
            tracer.record_delivery(tag, cycle=7)
        assert len(tracer) == 4
        assert [r["tag"] for r in tracer.records()] == [6, 7, 8, 9]
        assert tracer.completed_frames == 10

    def test_pending_table_hard_capped(self):
        tracer = FrameTracer(m=2, capacity=4, sample_every=1)
        cap = tracer._pending_cap
        for tag in range(cap + 5):  # never delivered
            self._dispatch(tracer, tag)
        assert len(tracer._pending) == cap
        assert tracer.abandoned_frames == 5

    def test_abandon_plane_drops_only_that_plane(self):
        tracer = FrameTracer(m=2, sample_every=1)
        self._dispatch(tracer, tag=0, plane=0)
        self._dispatch(tracer, tag=1, plane=1)
        tracer.abandon_plane(0)
        assert tracer.abandoned_frames == 1
        tracer.record_delivery(0, cycle=9)  # abandoned: ignored
        tracer.record_delivery(1, cycle=9)
        assert [r["tag"] for r in tracer.records()] == [1]

    def test_snapshot_shape(self):
        tracer = FrameTracer(m=2, capacity=8, sample_every=2)
        snap = tracer.snapshot()
        assert snap == {
            "capacity": 8,
            "sample_every": 2,
            "traced_frames": 0,
            "completed_frames": 0,
            "abandoned_frames": 0,
            "pending": 0,
            "records": [],
        }

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FrameTracer(m=2, capacity=0)


def _drive(gateway, words=64, seed=7):
    """Synchronously push random words through and drain (no event loop)."""
    import random

    rng = random.Random(seed)
    pushed = 0
    guard = 0
    while pushed < words and guard < 10_000:
        guard += 1
        try:
            gateway.voqs.admit(
                QueueEntry(
                    destination=rng.randrange(gateway.n),
                    payload=None,
                    enqueued_cycle=gateway.cycle,
                )
            )
            pushed += 1
        except AdmissionRejectedError:
            pass
        gateway.tick()
    while gateway.voqs.total or gateway._frames_in_flight():
        gateway.tick()
    return pushed


class TestGatewayInstrumentation:
    def test_attach_wires_observer_and_counts_traffic(self):
        gateway = AsyncGateway(GatewayConfig(m=3, planes=1))
        instr = GatewayInstrumentation(
            gateway, registry=Registry(), trace_sample_every=1
        ).attach()
        assert gateway.observer is instr
        pushed = _drive(gateway, words=40)
        snap = instr.metrics_snapshot()
        words_total = sum(
            s["value"] for s in snap["repro_gateway_words_total"]["samples"]
        )
        assert words_total == pushed == gateway.delivered_words
        assert (
            sum(
                s["value"]
                for s in snap["repro_gateway_dispatches_total"]["samples"]
            )
            > 0
        )
        assert snap["repro_voq_accepted_total"]["samples"][0]["value"] == pushed

    def test_traces_follow_the_stage_timeline(self):
        gateway = AsyncGateway(GatewayConfig(m=3, planes=1))
        instr = GatewayInstrumentation(
            gateway, registry=Registry(), trace_sample_every=1
        ).attach()
        _drive(gateway, words=20)
        records = instr.tracer.records()
        assert records
        for record in records:
            m = gateway.config.m
            t = record["dispatched_cycle"]
            assert record["stage_cycles"] == [t + 1 + k for k in range(m)]
            assert record["delivered_cycle"] == t + m
            assert record["mode"] == "clean"

    def test_metrics_off_gateway_has_no_observer(self):
        gateway = AsyncGateway(GatewayConfig(m=3, planes=1))
        assert gateway.observer is None
        _drive(gateway, words=10)  # no instrumentation, still delivers
        assert gateway.delivered_words == 10

    def test_plane_kill_counts_and_abandons(self, run_async):
        async def scenario():
            config = GatewayConfig(m=3, planes=2)
            gateway = AsyncGateway(config)
            instr = GatewayInstrumentation(
                gateway, registry=Registry(), trace_sample_every=1
            ).attach()
            async with gateway:
                await gateway.send(3)
                gateway.kill_plane(0, reason="test")
                await gateway.send_with_retry(5)
            return instr

        instr = run_async(scenario())
        snap = instr.metrics_snapshot()
        kills = snap["repro_gateway_plane_kills_total"]["samples"]
        assert [(s["labels"]["plane"], s["value"]) for s in kills] == [
            ("0", 1.0)
        ]
        healthy = {
            s["labels"]["plane"]: s["value"]
            for s in snap["repro_plane_healthy"]["samples"]
        }
        assert healthy == {"0": 0.0, "1": 1.0}

    def test_reject_counts_and_retry_after_histogram(self, run_async):
        async def scenario():
            config = GatewayConfig(m=2, planes=1, queue_capacity=1)
            gateway = AsyncGateway(config)
            instr = GatewayInstrumentation(
                gateway, registry=Registry()
            ).attach()
            async with gateway:
                # Fill destination 1's single slot, then send to it with
                # no intervening await: the clock task cannot run in
                # between, so the rejection is deterministic.
                gateway.voqs.admit(
                    QueueEntry(
                        destination=1,
                        payload=None,
                        enqueued_cycle=gateway.cycle,
                    )
                )
                with pytest.raises(AdmissionRejectedError):
                    await gateway.send(1)
            return instr

        instr = run_async(scenario())
        snap = instr.metrics_snapshot()
        assert snap["repro_gateway_rejects_total"]["samples"][0]["value"] == 1
        assert (
            snap["repro_gateway_retry_after_cycles"]["samples"][0]["count"]
            == 1
        )

    def test_combined_snapshot_shape(self):
        gateway = AsyncGateway(GatewayConfig(m=3, planes=1))
        instr = GatewayInstrumentation(gateway, registry=Registry()).attach()
        _drive(gateway, words=8)
        snap = instr.snapshot()
        assert set(snap) == {"gateway", "metrics", "traces"}
        assert snap["gateway"]["n"] == 8
        assert "repro_gateway_cycle" in snap["metrics"]
        # The whole thing must survive strict-JSON serialization.
        json.loads(dump_json(snap))

    def test_resilient_plane_service_metrics(self):
        gateway = AsyncGateway(
            GatewayConfig(m=2, planes=1, resilient=True)
        )
        instr = GatewayInstrumentation(gateway, registry=Registry()).attach()
        plane = gateway.planes[0]
        plane.fabric.check()  # proactive BIST pass fires the probe hook
        snap = instr.metrics_snapshot()
        probes = snap["repro_service_bist_probes_total"]["samples"]
        assert probes and all(
            s["labels"]["clean"] == "yes" for s in probes
        )
        assert sum(s["value"] for s in probes) > 0
        quarantined = snap["repro_service_quarantined"]["samples"]
        assert [(s["labels"]["plane"], s["value"]) for s in quarantined] == [
            ("0", 0.0)
        ]

    def test_prometheus_render_includes_pull_metrics(self):
        gateway = AsyncGateway(GatewayConfig(m=3, planes=1))
        instr = GatewayInstrumentation(gateway, registry=Registry()).attach()
        _drive(gateway, words=8)
        text = instr.render_prometheus()
        assert "# TYPE repro_gateway_cycle gauge" in text
        assert "repro_scheduler_fill_ratio_mean" in text
        assert 'repro_plane_healthy{plane="0"} 1' in text
