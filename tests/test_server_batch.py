"""The batch dataplane: ``send_batch``, ``BatchVectorPlane``, the client.

The per-batch counterpart of ``test_server_gateway``: one call admits
thousands of words, the frame-axis kernel routes whole windows per
gather, and a single :class:`BatchResult` comes back — delivery,
backpressure, retry, and shutdown semantics all per batch.
"""

import asyncio

import numpy as np
import pytest

from repro.client import GatewayClient
from repro.exceptions import (
    GatewayClosedError,
    GatewayRequestError,
    InputError,
    PlaneUnavailableError,
)
from repro.server import (
    AsyncGateway,
    BatchVectorPlane,
    GatewayConfig,
    GatewayServer,
)

pytestmark = pytest.mark.asyncio_suite


def _batch_config(m=6, capacity=256, window=32, planes=1):
    return GatewayConfig(
        m=m,
        planes=planes,
        queue_capacity=capacity,
        engine="batch",
        batch_window=window,
    )


def _permutation_burst(m, frames, seed=0):
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [rng.permutation(1 << m) for _ in range(frames)]
    ).astype(np.int64)


class TestSendBatch:
    def test_full_delivery_m6(self, run_async):
        async def scenario():
            async with AsyncGateway(_batch_config()) as gateway:
                dests = _permutation_burst(6, frames=50)
                result = await gateway.send_batch(dests)
            return dests, result

        dests, result = run_async(scenario())
        assert result.count == len(dests) == 3200
        assert result.delivered == 3200
        assert result.rejected == 0
        assert result.statuses.all()
        assert (result.latencies >= 1).all()
        assert (result.planes == 0).all()
        assert (result.frames >= 0).all()
        assert result.mode_table == ["clean"]
        assert (result.modes == 0).all()

    def test_empty_batch(self, run_async):
        async def scenario():
            async with AsyncGateway(_batch_config()) as gateway:
                return await gateway.send_batch(np.array([], dtype=np.int64))

        result = run_async(scenario())
        assert result.count == 0
        assert result.delivered == 0

    def test_single_send_rides_batch_plane(self, run_async):
        async def scenario():
            async with AsyncGateway(_batch_config(m=3)) as gateway:
                return await gateway.send(5, payload="solo")

        receipt = run_async(scenario())
        assert receipt.destination == 5
        assert receipt.payload == "solo"
        assert receipt.mode == "clean"

    def test_out_of_range_destination_raises(self, run_async):
        async def scenario():
            async with AsyncGateway(_batch_config(m=3)) as gateway:
                with pytest.raises(InputError, match="out of range"):
                    await gateway.send_batch(np.array([1, 2, 99]))
                with pytest.raises(InputError, match="one-dimensional"):
                    await gateway.send_batch(np.zeros((2, 2), dtype=np.int64))
                with pytest.raises(InputError, match="retry_attempts"):
                    await gateway.send_batch(
                        np.array([1]), retry_attempts=-1
                    )
                with pytest.raises(InputError, match="payloads"):
                    await gateway.send_batch(
                        np.array([1, 2]), payloads=["only-one"]
                    )

        run_async(scenario())

    def test_overload_marks_rejects_with_hints(self, run_async):
        async def scenario():
            config = GatewayConfig(
                m=1,
                planes=1,
                queue_capacity=2,
                engine="batch",
                batch_window=4,
            )
            async with AsyncGateway(config) as gateway:
                # 10 words for one destination into a 2-deep queue,
                # admitted in one synchronous round: exactly 2 fit.
                return await gateway.send_batch(np.zeros(10, dtype=np.int64))

        result = run_async(scenario())
        assert result.delivered == 2
        assert result.rejected == 8
        accepted = result.statuses.astype(bool)
        assert (result.retry_after[~accepted] >= 1).all()
        assert (result.retry_after[accepted] == 0).all()
        assert (result.latencies[~accepted] == -1).all()

    def test_retry_attempts_drain_the_overload(self, run_async):
        async def scenario():
            config = GatewayConfig(
                m=1,
                planes=1,
                queue_capacity=2,
                engine="batch",
                batch_window=4,
            )
            async with AsyncGateway(config) as gateway:
                return await gateway.send_batch(
                    np.zeros(10, dtype=np.int64), retry_attempts=16
                )

        result = run_async(scenario())
        assert result.delivered == 10
        assert result.rejected == 0
        assert result.statuses.all()

    def test_no_healthy_plane_raises_upfront(self, run_async):
        async def scenario():
            async with AsyncGateway(_batch_config(m=3)) as gateway:
                gateway.kill_plane(0)
                with pytest.raises(PlaneUnavailableError):
                    await gateway.send_batch(np.array([1, 2]))

        run_async(scenario())

    def test_stop_fails_stranded_batch(self, run_async, monkeypatch):
        async def scenario():
            # Freeze dispatch so the batch stays queued, then stop: the
            # tracker must fail with GatewayClosedError, not hang.
            monkeypatch.setattr(
                BatchVectorPlane, "ready", property(lambda self: False)
            )
            gateway = await AsyncGateway(_batch_config(m=3)).start()
            task = asyncio.ensure_future(
                gateway.send_batch(np.arange(8, dtype=np.int64))
            )
            await asyncio.sleep(0)  # run send_batch up to its await
            await gateway.stop(drain=False)
            with pytest.raises(GatewayClosedError):
                await task

        run_async(scenario())

    def test_concurrent_batches_interleave(self, run_async):
        async def scenario():
            async with AsyncGateway(_batch_config(m=4, window=8)) as gateway:
                bursts = [
                    _permutation_burst(4, frames=6, seed=seed)
                    for seed in range(5)
                ]
                results = await asyncio.gather(
                    *(gateway.send_batch(burst) for burst in bursts)
                )
            return bursts, results

        bursts, results = run_async(scenario())
        for burst, result in zip(bursts, results):
            assert result.delivered == len(burst)
            assert result.statuses.all()


class TestBatchVectorPlane:
    def test_window_buffers_then_routes_in_one_step(self, run_async):
        async def scenario():
            async with AsyncGateway(
                _batch_config(m=3, window=16)
            ) as gateway:
                await gateway.send_batch(_permutation_burst(3, frames=32))
                return gateway.planes[0].describe()

        described = run_async(scenario())
        assert described["engine"] == "batch"
        assert described["batch_window"] == 16
        assert described["frames_delivered"] == 32
        # The window amortized: far fewer kernel calls than frames.
        assert described["batches_routed"] < 32

    def test_config_rejects_batch_resilient_combo(self):
        with pytest.raises(Exception):
            GatewayConfig(m=3, engine="batch", resilient=True)
        with pytest.raises(Exception):
            GatewayConfig(m=3, engine="batch", batch_window=0)


class TestClientBatch:
    @pytest.mark.parametrize("binary", [False, True])
    def test_client_send_batch_round_trip(self, run_async, binary):
        async def scenario():
            gateway = await AsyncGateway(_batch_config()).start()
            server = await GatewayServer(gateway).start()
            try:
                async with GatewayClient(
                    "127.0.0.1", server.port, binary=binary
                ) as client:
                    dests = _permutation_burst(6, frames=16)
                    result = await client.send_batch(dests, retry=4)
            finally:
                await server.stop()
                await gateway.stop()
            return dests, result

        dests, result = run_async(scenario())
        assert result["count"] == len(dests)
        assert result["delivered"] == len(dests)
        assert isinstance(result["statuses"], np.ndarray)
        assert result["statuses"].dtype == np.int64
        assert result["statuses"].all()
        assert result["mode_table"] == ["clean"]

    def test_client_side_send_retry_honours_hints(self, run_async):
        async def scenario():
            config = GatewayConfig(
                m=1, planes=1, queue_capacity=1, engine="batch",
                batch_window=2,
            )
            gateway = await AsyncGateway(config).start()
            server = await GatewayServer(gateway).start()
            try:
                async with GatewayClient(
                    "127.0.0.1",
                    server.port,
                    seconds_per_cycle=0.0005,
                ) as client:
                    responses = await asyncio.gather(
                        *(
                            client.send(k % 2, retry=True, max_attempts=64)
                            for k in range(12)
                        )
                    )
            finally:
                await server.stop()
                await gateway.stop()
            return responses

        responses = run_async(scenario())
        assert len(responses) == 12
        assert all(response["ok"] for response in responses)

    def test_client_hello_negotiation_and_version_refusal(self, run_async):
        async def scenario():
            gateway = await AsyncGateway(_batch_config(m=3)).start()
            server = await GatewayServer(gateway).start()
            try:
                async with GatewayClient(
                    "127.0.0.1", server.port
                ) as client:
                    negotiated = (
                        client.protocol_version,
                        client.features,
                        client.n,
                    )
                    with pytest.raises(GatewayRequestError) as excinfo:
                        await client.hello(version=[99])
            finally:
                await server.stop()
                await gateway.stop()
            return negotiated, excinfo.value

        negotiated, error = run_async(scenario())
        version, features, n = negotiated
        assert version == (2, 0)
        assert "batch" in features and "binary" in features
        assert n == 8
        assert error.slug == "unsupported-version"
        assert error.response["protocol_version"] == [2, 0]
