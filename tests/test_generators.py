"""Unit tests for permutation workload generators."""

import itertools
import math
import random

import pytest

from repro.permutations import (
    PermutationSampler,
    all_permutations,
    random_bpc,
    random_derangement,
    random_involution,
    random_permutation,
    sampled_permutations,
)
from repro.permutations.properties import is_bpc, is_derangement, is_involution


class TestRandomPermutation:
    def test_deterministic_from_seed(self):
        assert random_permutation(16, rng=3) == random_permutation(16, rng=3)

    def test_different_seeds_differ(self):
        draws = {random_permutation(16, rng=s) for s in range(20)}
        assert len(draws) > 15

    def test_accepts_random_instance(self):
        r = random.Random(1)
        pi1 = random_permutation(8, rng=r)
        pi2 = random_permutation(8, rng=r)
        assert len(pi1) == len(pi2) == 8

    def test_uniformity_rough(self):
        # Each of the 6 permutations of 3 points should appear.
        seen = {random_permutation(3, rng=s).mapping for s in range(200)}
        assert len(seen) == 6


class TestStructuredGenerators:
    def test_derangement_has_no_fixed_points(self):
        for seed in range(30):
            assert is_derangement(random_derangement(8, rng=seed))

    def test_derangement_rejects_n1(self):
        with pytest.raises(ValueError):
            random_derangement(1)

    def test_involution_squares_to_identity(self):
        for seed in range(30):
            assert is_involution(random_involution(9, rng=seed))

    def test_bpc_is_bpc(self):
        for seed in range(30):
            assert is_bpc(random_bpc(16, rng=seed))

    def test_bpc_requires_power_of_two(self):
        with pytest.raises(Exception):
            random_bpc(12)


class TestEnumerators:
    def test_all_permutations_count(self):
        assert sum(1 for _ in all_permutations(4)) == math.factorial(4)

    def test_all_permutations_distinct(self):
        perms = list(all_permutations(3))
        assert len({p.mapping for p in perms}) == 6

    def test_sampled_permutations_count_and_size(self):
        perms = list(sampled_permutations(8, 10, rng=0))
        assert len(perms) == 10
        assert all(len(p) == 8 for p in perms)


class TestSampler:
    def test_reproducible(self):
        a = PermutationSampler(16, seed=5).batch(5)
        b = PermutationSampler(16, seed=5).batch(5)
        assert a == b

    def test_distributions(self):
        sampler = PermutationSampler(8, seed=1)
        assert is_derangement(sampler.draw("derangement"))
        assert is_involution(sampler.draw("involution"))
        assert is_bpc(sampler.draw("bpc"))
        assert sampler.draw("identity").mapping == tuple(range(8))

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            PermutationSampler(8).draw("zipf")

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            PermutationSampler(0)

    def test_word_lists_shape(self):
        lists = PermutationSampler(8, seed=2).word_lists(3)
        assert len(lists) == 3
        for wl in lists:
            assert sorted(wl) == list(range(8))
