"""Tests for the Benes network and Waksman's looping algorithm."""

import itertools

import pytest

from repro.baselines import BenesNetwork, benes_switch_count
from repro.core import Word
from repro.exceptions import NotAPermutationError
from repro.permutations import Permutation, random_permutation


class TestStructure:
    def test_switch_count(self):
        for m in range(1, 8):
            n = 1 << m
            net = BenesNetwork(m)
            assert net.switch_count == benes_switch_count(n) == (2 * m - 1) * n // 2
            assert net.fabric.switch_count == net.switch_count

    def test_stage_count(self):
        assert BenesNetwork(4).stage_count == 7

    def test_cheaper_than_sorting_networks(self):
        """O(N log N) vs O(N log^3 N): the rearrangeable-but-global
        tradeoff the paper's introduction describes."""
        from repro.analysis.complexity import bnb_switch_slices

        for m in range(4, 10):
            assert benes_switch_count(1 << m) < bnb_switch_slices(1 << m)

    def test_second_half_schedule(self):
        net = BenesNetwork(3)
        assert net.second_half_bit_schedule() == [(2, 2), (3, 1), (4, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            BenesNetwork(0)
        with pytest.raises(Exception):
            benes_switch_count(12)


class TestLoopingAlgorithm:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_exhaustive(self, m):
        net = BenesNetwork(m)
        for p in itertools.permutations(range(1 << m)):
            out, _ = net.route(list(p))
            assert [w.address for w in out] == list(range(1 << m)), p

    @pytest.mark.parametrize("m", [4, 5, 6])
    def test_sampled(self, m):
        net = BenesNetwork(m)
        for seed in range(25):
            pi = random_permutation(1 << m, rng=seed)
            out, _ = net.route(pi.to_list())
            assert [w.address for w in out] == list(range(1 << m))

    def test_controls_realize_the_permutation(self):
        net = BenesNetwork(4)
        pi = random_permutation(16, rng=9)
        controls = net.controls_for(pi)
        realized = net.fabric.realized_permutation(controls)
        assert realized == pi

    def test_payloads_and_traces(self):
        net = BenesNetwork(3)
        pi = random_permutation(8, rng=4)
        words = [Word(address=pi(j), payload=j) for j in range(8)]
        out, traces = net.route(words, trace=True)
        assert traces is not None
        for trace in traces:
            # Every packet crosses all 2m-1 columns plus 2m-2 wirings.
            assert len(trace.positions) == 1 + (2 * 3 - 1) + (2 * 3 - 2)
            assert trace.packet.address == trace.output_line

    def test_rejects_non_permutation(self):
        with pytest.raises(NotAPermutationError):
            BenesNetwork(2).route([0, 1, 1, 2])

    def test_controls_size_validation(self):
        with pytest.raises(ValueError):
            BenesNetwork(2).controls_for(Permutation([0, 1]))
