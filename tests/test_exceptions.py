"""Exception hierarchy contracts."""

import pytest

from repro import exceptions as exc


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for error_type in (
            exc.ConfigurationError,
            exc.SizeError,
            exc.InputError,
            exc.UnbalancedInputError,
            exc.NotAPermutationError,
            exc.RoutingError,
            exc.PathConflictError,
            exc.UnroutablePermutationError,
            exc.SimulationError,
            exc.FaultError,
            exc.FaultServiceError,
            exc.QuarantineExhaustedError,
            exc.LocalizationAmbiguousError,
            exc.RetryBudgetExceededError,
        ):
            assert issubclass(error_type, exc.ReproError)

    def test_service_errors_share_a_base(self):
        for error_type in (
            exc.QuarantineExhaustedError,
            exc.LocalizationAmbiguousError,
            exc.RetryBudgetExceededError,
        ):
            assert issubclass(error_type, exc.FaultServiceError)

    def test_size_error_is_configuration(self):
        assert issubclass(exc.SizeError, exc.ConfigurationError)

    def test_unbalanced_is_input_error(self):
        assert issubclass(exc.UnbalancedInputError, exc.InputError)

    def test_conflict_is_routing_error(self):
        assert issubclass(exc.PathConflictError, exc.RoutingError)


class TestMessages:
    def test_size_error_payload(self):
        error = exc.SizeError(12, "fabric width")
        assert error.size == 12
        assert "fabric width" in str(error)
        assert "12" in str(error)

    def test_unbalanced_counts(self):
        error = exc.UnbalancedInputError(3, 5)
        assert error.ones == 3 and error.zeros == 5
        assert "3 ones" in str(error)

    def test_not_a_permutation_keeps_addresses(self):
        error = exc.NotAPermutationError([0, 0, 1])
        assert error.addresses == [0, 0, 1]

    def test_path_conflict_location(self):
        error = exc.PathConflictError(stage=2, port=5, contenders=(1, 3))
        assert error.stage == 2 and error.port == 5
        assert "stage 2" in str(error)
        assert "(1, 3)" in str(error)

    def test_path_conflict_without_contenders(self):
        error = exc.PathConflictError(stage=0, port=1)
        assert "between" not in str(error)

    def test_quarantine_exhausted_detail(self):
        assert "spare" in str(exc.QuarantineExhaustedError("no spare plane"))

    def test_localization_ambiguous_keeps_candidates(self):
        error = exc.LocalizationAmbiguousError([("c1", 0), ("c2", 0)])
        assert error.candidates == [("c1", 0), ("c2", 0)]
        assert "2" in str(error)

    def test_retry_budget_payload(self):
        error = exc.RetryBudgetExceededError(pending=3, retries=4)
        assert error.pending == 3 and error.retries == 4
        assert "3" in str(error) and "4" in str(error)


class TestCatchability:
    def test_single_except_clause_suffices(self):
        from repro import BNBNetwork

        with pytest.raises(exc.ReproError):
            BNBNetwork(2).route([0, 0, 1, 2])
        with pytest.raises(exc.ReproError):
            from repro.core import Splitter

            Splitter(2).route_bits([1, 0, 0, 0])
