"""The vector plane's sampled verification and the multi-process pool."""

import asyncio
import random

import pytest

from repro.server import (
    AsyncGateway,
    FrameScheduler,
    GatewayConfig,
    ProcessPlanePool,
    VectorPlane,
    VirtualOutputQueues,
)
from repro.server.voq import QueueEntry

pytestmark = pytest.mark.asyncio_suite


def _full_frame(scheduler, voqs, n, cycle=1):
    for destination in range(n):
        voqs.admit(
            QueueEntry(
                destination=destination, payload=None, enqueued_cycle=0
            )
        )
    frame = scheduler.next_frame(voqs, cycle)
    assert frame is not None and frame.active == n
    return frame


def _run_plane(plane, frame):
    """Offer one frame and clock until it completes or the plane dies."""
    plane.offer(frame)
    for _ in range(plane.m + 2):
        completed, requeue = plane.step()
        if completed or requeue or not plane.healthy:
            return completed, requeue
    raise AssertionError("frame neither completed nor failed")


class TestVectorPlaneSampling:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            VectorPlane(0, 3, verify_every=0)
        with pytest.raises(ValueError):
            VectorPlane(0, 3, spot_checks=-1)

    def test_full_verify_every_kth_frame(self):
        m, n = 3, 8
        plane = VectorPlane(0, m, verify_every=4, spot_checks=2)
        scheduler = FrameScheduler(n)
        voqs = VirtualOutputQueues(n, 16)
        for index in range(9):
            completed, requeue = _run_plane(
                plane, _full_frame(scheduler, voqs, n, cycle=index + 1)
            )
            assert completed and not requeue
        # Frames 0, 4, 8 got the full check; the other six a spot check.
        assert plane.full_verifies == 3
        assert plane.spot_verifies == 6
        assert plane.frames_delivered == 9
        info = plane.describe()
        assert info["engine"] == "vector"
        assert info["verify_every"] == 4

    def test_spot_check_catches_injected_misdelivery(self):
        """Corrupt deliveries starting after the first frame, so only
        the rotating spot checks can see it — they must."""
        m, n = 3, 8
        plane = VectorPlane(0, m, verify_every=1000, spot_checks=n)
        delivered = [0]

        def corrupt(tag, outputs):
            if delivered[0]:
                outputs[0], outputs[1] = outputs[1], outputs[0]
            delivered[0] += 1

        # Registered after the plane's own hook: it mutates the very
        # list the plane captured, before the plane verifies it.
        plane.fabric.add_delivery_hook(corrupt)
        scheduler = FrameScheduler(n)
        voqs = VirtualOutputQueues(n, 16)
        completed, requeue = _run_plane(
            plane, _full_frame(scheduler, voqs, n, cycle=1)
        )
        assert completed and plane.healthy  # frame 0 rides clean
        completed, requeue = _run_plane(
            plane, _full_frame(scheduler, voqs, n, cycle=2)
        )
        assert not completed
        assert plane.healthy is False
        assert "misdelivered" in plane.failure
        assert len(requeue) == n  # the corrupted frame's words requeue
        assert plane.spot_verifies == 1

    def test_gateway_survives_misdelivering_vector_plane(self, run_async):
        """ISSUE acceptance: sampled verification kills the bad plane,
        its words requeue, and the pool still delivers 100%."""

        def factory(plane_id, m):
            plane = VectorPlane(plane_id, m, verify_every=2, spot_checks=2)
            if plane_id == 0:

                def corrupt(tag, outputs):
                    outputs[0], outputs[1] = outputs[1], outputs[0]

                plane.fabric.add_delivery_hook(corrupt)
            return plane

        async def scenario():
            config = GatewayConfig(m=3, planes=2, queue_capacity=16)
            rng = random.Random(23)
            async with AsyncGateway(config, plane_factory=factory) as gateway:
                receipts = await asyncio.gather(
                    *(
                        gateway.send_with_retry(
                            rng.randrange(8), payload=index, attempts=64
                        )
                        for index in range(200)
                    )
                )
                stats = gateway.stats()
            return receipts, stats

        receipts, stats = run_async(scenario())
        assert all(
            receipt.payload == index for index, receipt in enumerate(receipts)
        )
        assert stats["planes"][0]["healthy"] is False
        assert "misdelivered" in stats["planes"][0]["failure"]
        assert stats["planes"][1]["healthy"] is True
        assert stats["queues"]["requeued"] > 0


class TestProcessPlanePool:
    def test_pool_validation(self):
        with pytest.raises(ValueError):
            ProcessPlanePool(0, workers=1)
        with pytest.raises(ValueError):
            ProcessPlanePool(3, workers=0)

    def test_factory_checks_size(self):
        with ProcessPlanePool(3, workers=1) as pool:
            with pytest.raises(ValueError):
                pool.plane_factory(0, 4)

    def test_gateway_delivers_over_worker_processes(self, run_async):
        pool = ProcessPlanePool(3, workers=2)
        try:

            async def scenario():
                config = GatewayConfig(m=3, planes=2, queue_capacity=16)
                rng = random.Random(29)
                async with AsyncGateway(
                    config, plane_factory=pool.plane_factory
                ) as gateway:
                    receipts = await asyncio.gather(
                        *(
                            gateway.send_with_retry(
                                rng.randrange(8), payload=index, attempts=64
                            )
                            for index in range(120)
                        )
                    )
                    stats = gateway.stats()
                return receipts, stats

            receipts, stats = run_async(scenario())
        finally:
            pool.close()
        assert all(
            receipt.payload == index for index, receipt in enumerate(receipts)
        )
        assert stats["delivered_words"] == 120
        kinds = {plane["kind"] for plane in stats["planes"]}
        assert kinds == {"ProcessPlane"}
        assert all(
            plane["engine"] == "vector-process" for plane in stats["planes"]
        )

    def test_dead_worker_fails_plane_and_requeues(self):
        n = 8
        with ProcessPlanePool(3, workers=1) as pool:
            plane = pool.planes[0]
            scheduler = FrameScheduler(n)
            voqs = VirtualOutputQueues(n, 16)
            frame = _full_frame(scheduler, voqs, n)
            plane._process.terminate()
            plane._process.join(5)
            plane.offer(frame)
            requeue = []
            for _ in range(200):
                _completed, requeue = plane.step()
                if requeue or not plane.healthy:
                    break
            assert plane.healthy is False
            assert "worker" in plane.failure
            assert len(requeue) == n

    def test_close_is_idempotent_and_stops_workers(self):
        pool = ProcessPlanePool(3, workers=2)
        processes = [plane._process for plane in pool.planes]
        pool.close()
        pool.close()
        assert all(not process.is_alive() for process in processes)
