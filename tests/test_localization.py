"""Syndrome decoding: tracing misroutes back to the faulty switch."""

import pytest

from repro.core import BNBNetwork, Word
from repro.core.pipeline import PipelinedBNBFabric, stuck_control_override
from repro.exceptions import FaultError, LocalizationAmbiguousError
from repro.faults import (
    ProbeObservation,
    SwitchCoordinate,
    build_bist_schedule,
    candidate_switches,
    enumerate_switch_coordinates,
    extract_controls,
    inject_stuck_control,
    localize,
    replay_controls,
    route_with_stuck_switch,
    trace_switch_paths,
)
from repro.permutations import random_permutation


@pytest.fixture(scope="module")
def schedule3():
    return build_bist_schedule(3)


def faulty_observations(schedule, coordinate, value):
    """Run the schedule against an adaptively-faulty fabric."""
    pipeline = PipelinedBNBFabric(
        schedule.m,
        control_override=stuck_control_override(
            coordinate.main_stage,
            coordinate.nested,
            coordinate.nested_stage,
            coordinate.box,
            coordinate.switch,
            value,
        ),
    )
    return schedule.run(lambda words: pipeline.route_batch(words))


class TestProbeObservation:
    def test_clean_has_empty_syndrome(self):
        observation = ProbeObservation(
            addresses=(3, 2, 1, 0), arrived=(0, 1, 2, 3)
        )
        assert observation.clean
        assert observation.syndrome == ()

    def test_syndrome_lists_misrouted_lines(self):
        observation = ProbeObservation(
            addresses=(0, 1, 2, 3), arrived=(1, 0, 2, 3)
        )
        assert observation.syndrome == (0, 1)
        assert sorted(observation.displaced_addresses()) == [0, 1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(FaultError):
            ProbeObservation(addresses=(0, 1), arrived=(0, 1, 2))


class TestTraceSwitchPaths:
    def test_every_line_crosses_every_stage(self):
        """Each input line traverses exactly one switch per (main
        stage, nested stage) pair it passes through."""
        m = 3
        addresses = random_permutation(1 << m, rng=0).to_list()
        words = [Word(address=a, payload=j) for j, a in enumerate(addresses)]
        _out, record = BNBNetwork(m).route(words, record=True)
        paths = trace_switch_paths(m, extract_controls(record))
        assert len(paths) == 1 << m
        for path in paths:
            # m main stages; main stage i contributes m - i nested stages.
            assert len(path) == sum(m - i for i in range(m))
            stages = {
                (c.main_stage, c.nested_stage) for c in path
            }
            assert len(stages) == len(path)  # one switch per stage slice

    def test_missing_splitter_raises(self):
        with pytest.raises(FaultError, match="missing splitter"):
            trace_switch_paths(2, {})


class TestFrozenLocalization:
    def test_candidate_switches_contains_fault(self, schedule3):
        """Under frozen replay the displaced pair traverses the fault,
        so path narrowing always keeps the true coordinate."""
        m = 3
        for coordinate in enumerate_switch_coordinates(m):
            for value in (0, 1):
                for probe in schedule3.probes:
                    words = probe.words()
                    table = probe.controls
                    outputs = replay_controls(
                        m, words, inject_stuck_control(table, coordinate, value)
                    )
                    observation = ProbeObservation(
                        addresses=probe.addresses,
                        arrived=tuple(w.address for w in outputs),
                    )
                    if observation.clean:
                        continue
                    assert coordinate in candidate_switches(
                        m, observation, table
                    )

    def test_clean_observation_keeps_all_switches(self, schedule3):
        probe = schedule3.probes[0]
        observation = ProbeObservation(
            addresses=probe.addresses,
            arrived=tuple(range(len(probe.addresses))),
        )
        assert candidate_switches(3, observation, probe.controls) == set(
            enumerate_switch_coordinates(3)
        )

    def test_frozen_localize_finds_fault(self, schedule3):
        m = 3
        coordinate = enumerate_switch_coordinates(m)[-1]
        value = 0
        observations = []
        for probe in schedule3.probes:
            outputs = replay_controls(
                m,
                probe.words(),
                inject_stuck_control(probe.controls, coordinate, value),
            )
            observations.append(
                ProbeObservation(
                    addresses=probe.addresses,
                    arrived=tuple(w.address for w in outputs),
                )
            )
        result = localize(
            m,
            observations,
            model="frozen",
            tables=[p.controls for p in schedule3.probes],
        )
        assert (coordinate, value) in result.candidates


class TestAdaptiveLocalization:
    def test_unique_for_every_fault_m3(self, schedule3):
        """The headline guarantee: against the full schedule every
        single stuck-at fault at m = 3 localizes to a singleton."""
        tables = [p.controls for p in schedule3.probes]
        for coordinate in enumerate_switch_coordinates(3):
            for value in (0, 1):
                observations = faulty_observations(
                    schedule3, coordinate, value
                )
                result = localize(3, observations, tables=tables)
                assert result.is_unique, result.describe()
                assert result.candidates == [(coordinate, value)]
                assert result.coordinates == [coordinate]

    def test_unique_for_every_fault_m2(self):
        schedule = build_bist_schedule(2)
        tables = [p.controls for p in schedule.probes]
        for coordinate in enumerate_switch_coordinates(2):
            for value in (0, 1):
                observations = [
                    ProbeObservation(
                        addresses=probe.addresses,
                        arrived=tuple(
                            w.address
                            for w in route_with_stuck_switch(
                                2, probe.words(), coordinate, value
                            )
                        ),
                    )
                    for probe in schedule.probes
                ]
                result = localize(2, observations, tables=tables)
                assert result.candidates == [(coordinate, value)]

    def test_single_probe_can_be_ambiguous(self, schedule3):
        """Thin evidence leaves equivalence classes; require_unique
        converts them into LocalizationAmbiguousError."""
        tables = [p.controls for p in schedule3.probes]
        ambiguous = 0
        for coordinate in enumerate_switch_coordinates(3):
            for value in (0, 1):
                observations = faulty_observations(
                    schedule3, coordinate, value
                )
                first_dirty = next(
                    i for i, o in enumerate(observations) if not o.clean
                )
                result = localize(
                    3,
                    [observations[first_dirty]],
                    tables=[tables[first_dirty]],
                )
                assert (coordinate, value) in result.candidates
                if not result.is_unique:
                    ambiguous += 1
                    with pytest.raises(LocalizationAmbiguousError):
                        result.require_unique()
        assert ambiguous > 0  # m=3 has 2-element classes on one probe

    def test_all_clean_yields_no_candidates(self, schedule3):
        healthy = PipelinedBNBFabric(3)
        observations = schedule3.run(
            lambda words: healthy.route_batch(words)
        )
        result = localize(
            3, observations, tables=[p.controls for p in schedule3.probes]
        )
        assert result.candidates == []
        assert not result.is_unique
        with pytest.raises(LocalizationAmbiguousError):
            result.require_unique()
        assert "no single stuck-at fault" in result.describe()


class TestLocalizeValidation:
    def test_unknown_model(self):
        with pytest.raises(FaultError, match="model"):
            localize(2, [ProbeObservation((0, 1, 2, 3), (0, 1, 2, 3))],
                     model="quantum")

    def test_no_observations(self):
        with pytest.raises(FaultError, match="observation"):
            localize(2, [])

    def test_table_count_mismatch(self):
        with pytest.raises(FaultError, match="tables"):
            localize(
                2,
                [ProbeObservation((0, 1, 2, 3), (0, 1, 2, 3))],
                tables=[],
            )

    def test_describe_mentions_uniqueness(self, schedule3):
        observations = faulty_observations(
            schedule3, SwitchCoordinate(2, 0, 0, 0, 0), 1
        )
        result = localize(
            3, observations, tables=[p.controls for p in schedule3.probes]
        )
        assert "unique" in result.describe()
