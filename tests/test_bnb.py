"""Tests for the BNB network — Theorem 2 and Definition 5."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BNBNetwork, Word
from repro.exceptions import NotAPermutationError
from repro.permutations import (
    Permutation,
    bit_reversal,
    matrix_transpose,
    perfect_shuffle,
    random_permutation,
    reversal,
)


class TestTheorem2:
    @pytest.mark.parametrize("m", [1, 2])
    def test_exhaustive_tiny(self, m):
        net = BNBNetwork(m)
        for p in itertools.permutations(range(1 << m)):
            assert net.route_permutation(Permutation(p)), p

    def test_exhaustive_n8_sample_heavy(self):
        """All 40320 permutations of 8 would take a while; the first
        2000 in lexicographic order plus 500 random ones cover the
        switch space densely (the benchmark runs the full set)."""
        net = BNBNetwork(3)
        for i, p in enumerate(itertools.permutations(range(8))):
            if i >= 2000:
                break
            assert net.route_permutation(Permutation(p)), p
        for seed in range(500):
            assert net.route_permutation(random_permutation(8, rng=seed))

    @pytest.mark.parametrize("m", [4, 5, 6])
    def test_sampled_larger(self, m):
        net = BNBNetwork(m)
        for seed in range(40):
            assert net.route_permutation(random_permutation(1 << m, rng=seed))

    def test_structured_families(self):
        net = BNBNetwork(4)
        for pi in (
            Permutation.identity(16),
            reversal(4),
            bit_reversal(4),
            perfect_shuffle(4),
            matrix_transpose(4),
        ):
            assert net.route_permutation(pi)

    def test_payloads_ride_along(self):
        net = BNBNetwork(3)
        pi = random_permutation(8, rng=11)
        words = [Word(address=pi(j), payload=f"msg-from-{j}") for j in range(8)]
        outputs, _ = net.route(words)
        for line, word in enumerate(outputs):
            assert word.address == line
            source = pi.inverse()(line)
            assert word.payload == f"msg-from-{source}"


class TestInputValidation:
    def test_rejects_non_permutation(self):
        net = BNBNetwork(2)
        with pytest.raises(NotAPermutationError):
            net.route([0, 0, 1, 2])
        with pytest.raises(NotAPermutationError):
            net.route([0, 1, 2, 4])

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            BNBNetwork(2).route([0, 1])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BNBNetwork(0)
        with pytest.raises(ValueError):
            BNBNetwork(3, w=-1)

    def test_check_disabled_accepts_repeats(self):
        net = BNBNetwork(2, check_inputs=False)
        outputs, _ = net.route([0, 0, 3, 3])
        assert sorted(w.address for w in outputs) == [0, 0, 3, 3]


class TestStructure:
    def test_profile_matches_definition5(self):
        net = BNBNetwork(3, w=2)
        profile = net.profile()
        assert [len(stage) for stage in profile] == [1, 2, 4]
        for i, stage in enumerate(profile):
            for l, spec in enumerate(stage):
                assert spec.label == f"NB({i},{l})"
                assert spec.size == 1 << (3 - i)
                assert spec.bsn_slice == i
                assert spec.slice_count == (3 - i) + 2

    def test_switch_count_closed_form(self):
        from repro.analysis.complexity import bnb_switch_slices

        for m in range(1, 9):
            for w in (0, 4, 16):
                assert BNBNetwork(m, w=w).switch_count == bnb_switch_slices(
                    1 << m, w
                )

    def test_function_node_count_closed_form(self):
        from repro.analysis.complexity import bnb_function_nodes

        for m in range(1, 9):
            assert BNBNetwork(m).function_node_count == bnb_function_nodes(
                1 << m
            )

    def test_depths_match_eqs_7_8(self):
        for m in range(1, 9):
            net = BNBNetwork(m)
            assert net.switch_stage_depth == m * (m + 1) // 2
            expected_fn = 2 * sum(
                l for k in range(2, m + 1) for l in range(2, k + 1)
            )
            assert net.function_node_depth == expected_fn

    def test_propagation_delay_combines(self):
        net = BNBNetwork(5)
        assert net.propagation_delay(d_sw=1, d_fn=0) == net.switch_stage_depth
        assert net.propagation_delay(d_sw=0, d_fn=1) == net.function_node_depth


class TestRecords:
    def test_record_covers_all_nested_networks(self):
        net = BNBNetwork(3)
        pi = random_permutation(8, rng=2)
        _out, record = net.route(pi.to_list(), record=True)
        assert record is not None
        assert set(record.nested_records) == {
            (0, 0),
            (1, 0),
            (1, 1),
            (2, 0),
            (2, 1),
            (2, 2),
            (2, 3),
        }

    def test_packet_paths_deliver(self):
        net = BNBNetwork(4)
        pi = random_permutation(16, rng=3)
        words = [Word(address=pi(j), payload=j) for j in range(16)]
        _out, record = net.route(words, record=True)
        assert record is not None
        paths = record.all_packet_paths(words)
        for path in paths:
            assert path.delivered
            assert len(path.steps) == 4
            # Nested-network indices refine like a radix trie: the
            # NB index at stage i+1 is 2*previous or 2*previous + 1.
            for a, b in zip(path.steps, path.steps[1:]):
                assert b.nested_network in (
                    2 * a.nested_network,
                    2 * a.nested_network + 1,
                )

    def test_msb_sorted_after_stage0(self):
        """Theorem 2's induction start: after main stage 0, even lines
        carry MSB 0 and odd lines MSB 1."""
        net = BNBNetwork(4)
        pi = random_permutation(16, rng=7)
        words = [Word(address=pi(j)) for j in range(16)]
        _out, record = net.route(words, record=True)
        assert record is not None
        arrangement = record.stage_outputs[0]
        for line, original_input in enumerate(arrangement):
            msb = (words[original_input].address >> 3) & 1
            assert msb == (line & 1)

    def test_total_exchanges_bounded(self):
        net = BNBNetwork(3)
        _out, record = net.route(list(range(8)), record=True)
        assert record is not None
        per_slice_switches = sum(
            (1 << i) * ((1 << (3 - i)) // 2) * (3 - i) for i in range(3)
        )
        assert 0 <= record.total_exchanges() <= per_slice_switches
