"""Unit tests for repro.bits: the index algebra everything rests on."""

import pytest
from hypothesis import given, strategies as st

from repro import bits
from repro.exceptions import SizeError


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for k in range(20):
            assert bits.is_power_of_two(1 << k)

    def test_rejects_non_powers(self):
        for n in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not bits.is_power_of_two(n)

    def test_rejects_non_integers(self):
        assert not bits.is_power_of_two(2.0)
        assert not bits.is_power_of_two("2")

    def test_ilog2(self):
        for k in range(16):
            assert bits.ilog2(1 << k) == k

    def test_ilog2_rejects(self):
        with pytest.raises(SizeError):
            bits.ilog2(3)

    def test_require_reports_what(self):
        with pytest.raises(SizeError, match="frobnitz"):
            bits.require_power_of_two(7, "frobnitz")


class TestBitAccess:
    def test_bit_lsb_first(self):
        assert bits.bit(0b1010, 0) == 0
        assert bits.bit(0b1010, 1) == 1
        assert bits.bit(0b1010, 3) == 1

    def test_bit_rejects_negative_position(self):
        with pytest.raises(ValueError):
            bits.bit(1, -1)

    def test_address_bit_msb_first(self):
        # Paper convention: b^0 is the MSB.
        assert bits.address_bit(0b100, 0, 3) == 1
        assert bits.address_bit(0b100, 1, 3) == 0
        assert bits.address_bit(0b001, 2, 3) == 1

    def test_address_bit_range_check(self):
        with pytest.raises(ValueError):
            bits.address_bit(0, 3, 3)

    def test_set_bit(self):
        assert bits.set_bit(0b1010, 0, 1) == 0b1011
        assert bits.set_bit(0b1010, 1, 0) == 0b1000
        assert bits.set_bit(0b1010, 3, 1) == 0b1010

    def test_set_bit_rejects_non_bit(self):
        with pytest.raises(ValueError):
            bits.set_bit(0, 0, 2)

    @given(st.integers(min_value=0, max_value=255), st.integers(0, 7))
    def test_address_bit_consistent_with_to_bits(self, value, index):
        assert bits.address_bit(value, index, 8) == bits.to_bits(value, 8)[index]


class TestBitVectors:
    def test_to_bits_msb_first(self):
        assert bits.to_bits(0b110, 3) == [1, 1, 0]
        assert bits.to_bits(5, 4) == [0, 1, 0, 1]

    def test_to_bits_rejects_overflow(self):
        with pytest.raises(ValueError):
            bits.to_bits(8, 3)

    def test_from_bits_roundtrip(self):
        for value in range(64):
            assert bits.from_bits(bits.to_bits(value, 6)) == value

    def test_from_bits_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits.from_bits([0, 2, 1])

    def test_bit_reverse(self):
        assert bits.bit_reverse(0b001, 3) == 0b100
        assert bits.bit_reverse(0b110, 3) == 0b011

    @given(st.integers(0, 1023))
    def test_bit_reverse_involution(self, value):
        assert bits.bit_reverse(bits.bit_reverse(value, 10), 10) == value

    def test_parity_and_popcount(self):
        assert bits.popcount(0) == 0
        assert bits.popcount(0b1011) == 3
        assert bits.parity(0b1011) == 1
        assert bits.parity(0b1010) == 0

    def test_popcount_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.popcount(-1)


class TestRotations:
    def test_rotate_right_basic(self):
        assert bits.rotate_right(0b0001, 4) == 0b1000
        assert bits.rotate_right(0b0010, 4) == 0b0001

    def test_rotate_left_basic(self):
        assert bits.rotate_left(0b1000, 4) == 0b0001

    @given(st.integers(0, 255), st.integers(0, 16))
    def test_rotations_inverse(self, value, amount):
        assert (
            bits.rotate_left(bits.rotate_right(value, 8, amount), 8, amount)
            == value
        )

    def test_rotate_rejects_zero_width(self):
        with pytest.raises(ValueError):
            bits.rotate_right(1, 0)


class TestUnshuffle:
    def test_definition_1_example(self):
        # U_k^m moves b_0 to the top of the low k-bit field.
        m, k = 4, 3
        # index (b3 b2 b1 b0) = 0101 -> (b3 | b0 b2 b1) = 0110
        assert bits.unshuffle_index(0b0101, k, m) == 0b0110

    def test_even_offsets_to_upper_half(self):
        m, k = 4, 4
        for j in range(0, 16, 2):
            assert bits.unshuffle_index(j, k, m) == j // 2
        for j in range(1, 16, 2):
            assert bits.unshuffle_index(j, k, m) == 8 + j // 2

    def test_preserves_high_bits(self):
        m, k = 5, 3
        for j in range(32):
            assert bits.unshuffle_index(j, k, m) >> k == j >> k

    @given(st.integers(0, 63), st.integers(1, 6))
    def test_shuffle_inverts_unshuffle(self, j, k):
        m = 6
        assert bits.shuffle_index(bits.unshuffle_index(j, k, m), k, m) == j

    def test_unshuffle_permutation_is_permutation(self):
        wiring = bits.unshuffle_permutation(3, 5)
        assert sorted(wiring) == list(range(32))

    def test_cached_wirings_memoize_as_immutable_tuples(self):
        """The cache hands back one shared tuple per (k, m); the public
        list functions return fresh copies a caller may mutate."""
        assert bits.cached_unshuffle_permutation(
            3, 5
        ) is bits.cached_unshuffle_permutation(3, 5)
        assert bits.cached_shuffle_permutation(
            3, 5
        ) is bits.cached_shuffle_permutation(3, 5)
        first = bits.unshuffle_permutation(3, 5)
        second = bits.unshuffle_permutation(3, 5)
        assert first == second and first is not second
        first[0] = -1  # must not poison the cache
        assert bits.unshuffle_permutation(3, 5) == second

    def test_cached_wirings_match_index_functions(self):
        for k in range(1, 6):
            unshuffle = bits.cached_unshuffle_permutation(k, 5)
            shuffle = bits.cached_shuffle_permutation(k, 5)
            for j in range(32):
                assert unshuffle[j] == bits.unshuffle_index(j, k, 5)
                assert shuffle[j] == bits.shuffle_index(j, k, 5)

    def test_unshuffle_list_semantics(self):
        # result[U(j)] = lines[j]
        lines = list("abcdefgh")
        result = bits.unshuffle(lines, 3, 3)
        assert result == ["a", "c", "e", "g", "b", "d", "f", "h"]

    def test_shuffle_list_inverts(self):
        lines = list(range(16))
        assert bits.shuffle(bits.unshuffle(lines, 4, 4), 4, 4) == lines

    def test_size_validation(self):
        with pytest.raises(ValueError):
            bits.unshuffle([1, 2, 3], 2, 2)
        with pytest.raises(ValueError):
            bits.unshuffle_index(4, 0, 2)
        with pytest.raises(ValueError):
            bits.unshuffle_index(4, 3, 2)


class TestButterflyGray:
    def test_butterfly_swaps_bits(self):
        assert bits.butterfly_index(0b100, 2, 3) == 0b001
        assert bits.butterfly_index(0b101, 2, 3) == 0b101

    def test_butterfly_involution(self):
        for j in range(16):
            assert bits.butterfly_index(bits.butterfly_index(j, 2, 4), 2, 4) == j

    def test_butterfly_range_checks(self):
        with pytest.raises(ValueError):
            bits.butterfly_index(0, 4, 4)
        with pytest.raises(ValueError):
            bits.butterfly_index(16, 2, 4)

    @given(st.integers(0, 10_000))
    def test_gray_roundtrip(self, value):
        assert bits.inverse_gray_code(bits.gray_code(value)) == value

    def test_gray_adjacent_differ_by_one_bit(self):
        for v in range(255):
            diff = bits.gray_code(v) ^ bits.gray_code(v + 1)
            assert bits.popcount(diff) == 1


class TestPairs:
    def test_pairs_basic(self):
        assert list(bits.pairs([1, 2, 3, 4])) == [(1, 2), (3, 4)]

    def test_pairs_rejects_odd(self):
        with pytest.raises(ValueError):
            list(bits.pairs([1, 2, 3]))
