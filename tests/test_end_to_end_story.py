"""One end-to-end story exercising the whole library together.

A 16-port fabric is built, carries traffic, gets a fault injected,
detects and recovers from it, has its hardware generated, optimized,
exported to Verilog and re-imported — with every step's output feeding
the next.  If any two subsystems disagree about the world, this test
is where it shows.
"""

import numpy as np

from repro.analysis.complexity import bnb_delay, bnb_switch_slices
from repro.analysis.delay import bnb_measured_delay
from repro.core import BNBNetwork, MultipassRouter, Word
from repro.faults import (
    SwitchCoordinate,
    detect_and_reroute,
    extract_controls,
    inject_stuck_control,
    misrouted_outputs,
    replay_controls,
)
from repro.hardware import (
    build_bnb_netlist,
    emit_verilog,
    optimize,
    parse_verilog,
    sanitize_identifier,
)
from repro.permutations import PermutationSampler
from repro.sim import GateLevelSimulator


def test_the_whole_story():
    m = 4
    n = 1 << m
    network = BNBNetwork(m, w=8)
    sampler = PermutationSampler(n, seed=2026)

    # --- Chapter 1: the paper's accounting holds for this instance.
    assert network.switch_count == bnb_switch_slices(n, 8)
    assert network.propagation_delay() == bnb_measured_delay(m) == bnb_delay(n)

    # --- Chapter 2: traffic flows; records match reality.
    pi = sampler.draw()
    words = [Word(address=pi(j), payload=f"pkt{j}") for j in range(n)]
    outputs, record = network.route(words, record=True)
    assert record is not None
    assert misrouted_outputs(outputs) == []
    fast = network.route_fast(np.array(pi.to_list()))
    assert fast.tolist() == [w.address for w in outputs]

    # --- Chapter 3: a stuck switch, caught and repaired.
    table = extract_controls(record)
    coordinate = SwitchCoordinate(m - 1, 0, 0, 0, 0)  # final stage: no masking
    healthy = table[(m - 1, 0, 0, 0)][0]
    faulty = replay_controls(
        m, words, inject_stuck_control(table, coordinate, 1 - healthy)
    )
    assert len(misrouted_outputs(faulty)) == 2
    outcome = detect_and_reroute(m, pi.to_list(), coordinate, 1 - healthy)
    if outcome.recovered:
        assert all(
            word is not None and word.address == line
            for line, word in enumerate(outcome.outputs)
        )

    # --- Chapter 4: contended traffic in minimal rounds.
    router = MultipassRouter(network)
    requests = [(pi(j) % 4, f"hot{j}") if j < 8 else None for j in range(n)]
    result = router.route(requests)
    assert result.rounds == result.max_multiplicity
    delivered = [
        payload
        for output in range(n)
        for payload in result.all_payloads_at(output)
    ]
    assert sorted(delivered) == sorted(req[1] for req in requests if req)

    # --- Chapter 5: the same machine, as gates, as RTL, optimized.
    netlist, ports = build_bnb_netlist(m)
    assignment = ports.input_assignment(pi.to_list())
    assert ports.decode_outputs(netlist.evaluate(assignment)) == list(range(n))
    optimized, report = optimize(netlist)
    assert report.gates_after < report.gates_before
    assert ports.decode_outputs(
        {k: v for k, v in optimized.evaluate(assignment).items()}
    ) == list(range(n))
    reparsed = parse_verilog(emit_verilog(optimized))
    sanitized = {sanitize_identifier(k): v for k, v in assignment.items()}
    rtl_outputs = reparsed.evaluate(sanitized)
    decoded = [
        sum(
            rtl_outputs[sanitize_identifier(ports.address_outputs[j][b])]
            << (m - 1 - b)
            for b in range(m)
        )
        for j in range(n)
    ]
    assert decoded == list(range(n))

    # --- Epilogue: the event-driven simulator agrees and settles.
    simulator = GateLevelSimulator(optimized)
    result = simulator.run(assignment)
    assert result.settle_time > 0
    decoded_des = [
        sum(
            result.outputs[ports.address_outputs[j][b]] << (m - 1 - b)
            for b in range(m)
        )
        for j in range(n)
    ]
    assert decoded_des == list(range(n))
