"""Technology-sensitivity tests: the delay advantage is unconditional."""

import pytest

from repro.analysis.sensitivity import (
    advantage_ratio_sweep,
    delay_advantage_holds,
    fn_term_gap,
    switch_terms_identical,
)


class TestStructure:
    def test_switch_terms_identical_all_sizes(self):
        """Both fabrics cross m(m+1)/2 switch columns: Eq. 9's and
        Eq. 12's D_SW polynomials coincide."""
        for m in range(1, 14):
            assert switch_terms_identical(1 << m)

    def test_fn_gap_positive(self):
        for m in range(1, 14):
            assert fn_term_gap(1 << m) >= 0
        assert fn_term_gap(2) >= 0  # m=1: 1 vs 0

    def test_fn_gap_grows_cubically(self):
        gap_small = fn_term_gap(1 << 5)
        gap_large = fn_term_gap(1 << 10)
        assert gap_large / gap_small > (10 / 5) ** 2.5


class TestAdvantage:
    @pytest.mark.parametrize("d_sw,d_fn", [(1, 1), (10, 1), (1, 10), (0, 1), (1, 0), (3.7, 0.2)])
    def test_holds_for_any_technology(self, d_sw, d_fn):
        for m in (2, 5, 9):
            assert delay_advantage_holds(1 << m, d_sw, d_fn)

    def test_rejects_negative_constants(self):
        with pytest.raises(ValueError):
            delay_advantage_holds(8, -1, 1)

    def test_ratio_sweep_limits(self):
        sweep = advantage_ratio_sweep(1 << 8)
        ratios = dict(sweep)
        # Function logic dominating: best case, near the log^3 ratio.
        assert ratios[0.0] < 0.82
        # Switch dominating: advantage washes out toward 1, never above.
        assert 0.95 < ratios[100.0] <= 1.0
        # Monotone in the technology ratio.
        ordered = [value for _ratio, value in sweep]
        assert ordered == sorted(ordered)
