"""Tests for the flip (STARAN) network."""

import itertools

import pytest

from repro.permutations import Permutation
from repro.topology import (
    baseline_network,
    flip_network,
    flip_routing_bit_schedule,
    omega_network,
    topologically_equivalent,
)


class TestStructure:
    def test_counts(self):
        for m in (1, 2, 3, 4):
            net = flip_network(1 << m)
            assert net.stage_count == m
            assert net.switch_count == (1 << m) // 2 * m

    def test_equivalent_to_the_class(self):
        assert topologically_equivalent(flip_network(8), omega_network(8))
        assert topologically_equivalent(flip_network(8), baseline_network(8))


class TestRouting:
    def test_full_reachability(self):
        n = 16
        net = flip_network(n)
        schedule = flip_routing_bit_schedule(n)
        for source in range(n):
            for dest in range(n):
                request = [None] * n
                request[source] = dest
                report = net.self_route(request, schedule)
                assert report.outputs[dest] == dest

    def test_passable_count_n4(self):
        net = flip_network(4)
        schedule = flip_routing_bit_schedule(4)
        passed = sum(
            net.self_route(list(p), schedule).delivered
            for p in itertools.permutations(range(4))
        )
        assert passed == 16

    def test_different_passable_set_than_omega(self):
        from repro.topology import omega_routing_bit_schedule

        omega = omega_network(8)
        flip = flip_network(8)
        o_sched = omega_routing_bit_schedule(8)
        f_sched = flip_routing_bit_schedule(8)
        differ = 0
        for p in itertools.islice(itertools.permutations(range(8)), 2000):
            if (
                omega.self_route(list(p), o_sched).delivered
                != flip.self_route(list(p), f_sched).delivered
            ):
                differ += 1
        assert differ > 0
