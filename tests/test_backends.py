"""The backend registry, protocol conformance, and engine correctness.

Every registered backend must (a) satisfy the ``RoutingBackend``
protocol, (b) deliver **every** permutation at m=3 — the exhaustive
Theorem-2-style sweep, all ``8! = 40320`` frames — and (c) agree with
the crossbar oracle under hypothesis-driven fuzz, in both its single
and batch forms.  The registry itself is pinned: names, capability
flags, compile-once caching, duplicate rejection.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import (
    BackendSpec,
    RoutingBackend,
    backend_names,
    backend_specs,
    compile_cache_info,
    compiled_backend,
    get_backend_spec,
    prewarm,
    register_backend,
)
from repro.backends.base import _REGISTRY
from repro.baselines.crossbar import Crossbar
from repro.core.words import Word

EXPECTED = ["bnb", "bnb-object", "krbenes", "msorter"]


def _delivered(addresses: np.ndarray, sources: np.ndarray) -> bool:
    """sources[a] is the line whose word arrived at output a."""
    return bool(np.array_equal(addresses[sources], np.arange(len(addresses))))


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert backend_names() == EXPECTED

    def test_capability_flags(self):
        flags = {
            spec.name: spec.supports_fault_mask for spec in backend_specs()
        }
        assert flags == {
            "bnb": True,
            "bnb-object": False,
            "krbenes": False,
            "msorter": False,
        }
        # Reserved until a partial-capable engine registers.
        assert not any(spec.supports_partial for spec in backend_specs())

    def test_describe_shape(self):
        info = get_backend_spec("bnb").describe()
        assert info["name"] == "bnb"
        assert info["supports_fault_mask"] is True
        assert set(info) == {
            "name", "summary", "supports_fault_mask", "supports_partial",
        }

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend_spec("nope")
        with pytest.raises(ValueError, match="unknown backend"):
            compiled_backend("nope", 3)

    def test_duplicate_registration_rejected_same_spec_idempotent(self):
        spec = get_backend_spec("bnb")
        assert register_backend(spec) is spec  # idempotent re-register
        clone = BackendSpec(
            name="bnb", summary="impostor", factory=spec.factory
        )
        with pytest.raises(ValueError, match="already registered"):
            register_backend(clone)
        assert get_backend_spec("bnb") is spec

    def test_compiled_backend_caches_per_name_and_m(self):
        a = compiled_backend("msorter", 3)
        b = compiled_backend("msorter", 3)
        c = compiled_backend("msorter", 4)
        assert a is b
        assert a is not c
        with pytest.raises(ValueError, match="m >= 1"):
            compiled_backend("msorter", 0)

    def test_prewarm_compiles_all_named(self):
        names = prewarm(2)
        assert names == backend_names()
        before = compile_cache_info().hits
        prewarm(2, ["krbenes"])  # second pass: pure cache hits
        assert compile_cache_info().hits > before


class TestProtocolConformance:
    @pytest.mark.parametrize("name", EXPECTED)
    def test_satisfies_routing_backend(self, name):
        engine = compiled_backend(name, 3)
        assert isinstance(engine, RoutingBackend)
        assert engine.name == name
        assert engine.m == 3
        assert engine.n == 8

    @pytest.mark.parametrize("name", EXPECTED)
    def test_route_shapes_and_dtype(self, name):
        engine = compiled_backend(name, 2)
        frame = np.array([2, 0, 3, 1], dtype=np.int64)
        sources = engine.route_frame(frame)
        assert sources.shape == (4,)
        assert sources.dtype == np.int64
        stacked = engine.route_frame_batch(np.stack([frame, frame[::-1]]))
        assert stacked.shape == (2, 4)


class TestExhaustiveDelivery:
    """All 40320 permutations at m=3, per backend, batched."""

    @pytest.mark.slow
    @pytest.mark.parametrize("name", EXPECTED)
    def test_every_m3_permutation_delivers(self, name):
        engine = compiled_backend(name, 3)
        frames = np.array(
            list(itertools.permutations(range(8))), dtype=np.int64
        )
        assert frames.shape == (40320, 8)
        sources = engine.route_frame_batch(frames)
        arrived = np.take_along_axis(frames, sources, axis=1)
        assert np.array_equal(
            arrived, np.broadcast_to(np.arange(8), frames.shape)
        )

    @pytest.mark.parametrize("name", EXPECTED)
    @pytest.mark.parametrize("m", [1, 2])
    def test_tiny_sizes_exhaustive(self, name, m):
        engine = compiled_backend(name, m)
        n = 1 << m
        for perm in itertools.permutations(range(n)):
            frame = np.array(perm, dtype=np.int64)
            assert _delivered(frame, engine.route_frame(frame)), perm


@st.composite
def sized_frames(draw):
    m = draw(st.integers(1, 4))
    mapping = draw(st.permutations(list(range(1 << m))))
    return m, np.array(mapping, dtype=np.int64)


class TestDifferentialFuzz:
    @settings(max_examples=60, deadline=None)
    @given(sized_frames())
    def test_all_backends_match_the_crossbar_oracle(self, case):
        m, frame = case
        n = 1 << m
        outputs = Crossbar(n).route(
            [
                Word(address=int(address), payload=line)
                for line, address in enumerate(frame)
            ]
        )
        oracle = np.array([word.payload for word in outputs], dtype=np.int64)
        for name in backend_names():
            engine = compiled_backend(name, m)
            assert np.array_equal(engine.route_frame(frame), oracle), name

    @settings(max_examples=30, deadline=None)
    @given(sized_frames(), st.integers(2, 6))
    def test_batch_form_matches_single_form(self, case, batch):
        m, frame = case
        rng = np.random.default_rng(int(frame.sum()) + batch)
        stack = np.stack(
            [frame]
            + [
                rng.permutation(1 << m).astype(np.int64)
                for _ in range(batch - 1)
            ]
        )
        for name in backend_names():
            engine = compiled_backend(name, m)
            batched = engine.route_frame_batch(stack)
            for row, addresses in zip(batched, stack):
                assert np.array_equal(
                    row, engine.route_frame(addresses)
                ), name


class TestFaultMaskCapability:
    def test_bnb_routes_through_a_mask(self):
        from repro.core.pipeline_fast import route_frame_sources

        engine = compiled_backend("bnb", 3)
        frame = np.array([4, 1, 5, 2, 0, 3, 7, 6], dtype=np.int64)
        # No mask: same kernel, same answer.
        assert np.array_equal(
            engine.route_frame(frame, mask=None),
            route_frame_sources(3, frame),
        )

    def test_unflagged_backends_take_no_mask_kwarg(self):
        frame = np.array([1, 0], dtype=np.int64)
        for name in ("bnb-object", "krbenes", "msorter"):
            engine = compiled_backend(name, 1)
            with pytest.raises(TypeError):
                engine.route_frame(frame, mask=object())


class TestRegistryIsTheChoicesSource:
    def test_cli_backend_choices_track_the_registry(self):
        from repro.cli import _backend_choices

        assert _backend_choices() == backend_names() + ["auto"]

    def test_registry_keys_match_spec_names(self):
        assert all(name == _REGISTRY[name].name for name in _REGISTRY)
