"""Tests for bit-controlled (Nassimi-Sahni-style) self-routing on Benes.

These tests pin down the paper's motivation: a one-bit switch-setting
rule self-routes the whole BPC class, but the fraction of *arbitrary*
permutations it can route collapses as N grows.
"""

import itertools

import pytest

from repro.baselines import NassimiSahniRouter
from repro.exceptions import NotAPermutationError, UnroutablePermutationError
from repro.permutations import random_bpc, random_permutation
from repro.permutations.families import bpc


class TestBPCClass:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_all_bpc_route_exhaustively(self, m):
        router = NassimiSahniRouter(m)
        for sigma in itertools.permutations(range(m)):
            for complement in range(1 << m):
                pi = bpc(m, list(sigma), complement)
                assert router.can_route(pi), (sigma, complement)

    @pytest.mark.parametrize("m", [5, 6])
    def test_random_bpc_route(self, m):
        router = NassimiSahniRouter(m)
        for seed in range(40):
            assert router.can_route(random_bpc(1 << m, rng=seed))

    def test_route_returns_sorted_words(self):
        router = NassimiSahniRouter(3)
        pi = bpc(3, [2, 0, 1], 0b101)
        outputs = router.route(pi.to_list())
        assert [w.address for w in outputs] == list(range(8))


class TestRestriction:
    def test_unroutable_raises_with_location(self):
        router = NassimiSahniRouter(4)
        # Find a permutation that fails and check the error surface.
        for seed in range(200):
            pi = random_permutation(16, rng=seed)
            attempt = router.try_route(pi.to_list())
            if not attempt.success:
                assert attempt.conflict_stage is not None
                assert attempt.conflict_stage >= router.m - 1  # second half
                with pytest.raises(UnroutablePermutationError):
                    router.route(pi.to_list())
                return
        pytest.fail("expected at least one unroutable permutation at N=16")

    def test_routable_fraction_collapses(self):
        fractions = {}
        for m in (3, 4):
            fractions[m] = NassimiSahniRouter(m).routable_fraction(
                200, seed=11
            )
        assert fractions[3] > fractions[4]
        assert fractions[4] < 0.05

    def test_routable_fraction_validation(self):
        with pytest.raises(ValueError):
            NassimiSahniRouter(3).routable_fraction(0)

    def test_rejects_non_permutation(self):
        with pytest.raises(NotAPermutationError):
            NassimiSahniRouter(2).try_route([0, 1, 1, 2])
