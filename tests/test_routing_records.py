"""Direct unit tests for routing-record value types."""

import pytest

from repro.core import BNBNetwork, PacketPath, RouteStep, Word
from repro.permutations import random_permutation


class TestRouteStep:
    def test_fields(self):
        step = RouteStep(main_stage=1, nested_network=2, line=5)
        assert (step.main_stage, step.nested_network, step.line) == (1, 2, 5)

    def test_frozen(self):
        step = RouteStep(main_stage=0, nested_network=0, line=0)
        with pytest.raises(Exception):
            step.line = 3  # type: ignore[misc]


class TestPacketPath:
    def make_path(self, delivered=True):
        return PacketPath(
            input_line=2,
            output_line=4 if delivered else 5,
            address=4,
            payload="msg",
            steps=(
                RouteStep(0, 0, 6),
                RouteStep(1, 1, 5),
                RouteStep(2, 2, 4),
            ),
        )

    def test_delivered(self):
        assert self.make_path(delivered=True).delivered
        assert not self.make_path(delivered=False).delivered

    def test_nested_networks_visited(self):
        path = self.make_path()
        assert path.nested_networks_visited() == [(0, 0), (1, 1), (2, 2)]


class TestConsistencyWithNetwork:
    def test_paths_follow_physical_lines(self):
        """Every recorded line must sit inside the recorded nested
        network's span at that stage."""
        m = 4
        network = BNBNetwork(m)
        pi = random_permutation(16, rng=12)
        words = [Word(address=pi(j), payload=j) for j in range(16)]
        _out, record = network.route(words, record=True)
        assert record is not None
        for path in record.all_packet_paths(words):
            for step in path.steps:
                block = 1 << (m - step.main_stage)
                lo = step.nested_network * block
                assert lo <= step.line < lo + block

    def test_each_line_holds_one_packet_per_stage(self):
        m = 3
        network = BNBNetwork(m)
        pi = random_permutation(8, rng=13)
        words = [Word(address=pi(j), payload=j) for j in range(8)]
        _out, record = network.route(words, record=True)
        assert record is not None
        paths = record.all_packet_paths(words)
        for stage in range(m):
            lines = [path.steps[stage].line for path in paths]
            assert sorted(lines) == list(range(8))
