"""Scenario library, trace format round-trip, and the replay harness
(including the ``repro replay`` CLI surface)."""

import asyncio
import json

import pytest

from repro.cli import main
from repro.exceptions import InputError
from repro.server import AsyncGateway, GatewayConfig
from repro.traffic import (
    SCENARIOS,
    Scenario,
    TenantSpec,
    Trace,
    load_trace,
    parse_tenant_spec,
    replay_scenario,
    replay_trace,
    synthesize,
)


class TestScenarios:
    def test_builtin_library_shapes(self):
        assert set(SCENARIOS) == {
            "uniform", "hotspot", "multicast", "tenants", "mixed"
        }
        assert SCENARIOS["multicast"].multicast_fraction == 1.0
        assert SCENARIOS["tenants"].tenant_weights == {"gold": 8, "bronze": 1}

    def test_scenario_validation(self):
        with pytest.raises(InputError):
            Scenario(name="x", distribution="bursty")
        with pytest.raises(InputError):
            Scenario(name="x", multicast_fraction=1.5)
        with pytest.raises(InputError):
            Scenario(name="x", fanout=1)
        with pytest.raises(InputError):
            TenantSpec("gold", weight=0)

    def test_parse_tenant_spec(self):
        assert parse_tenant_spec("gold:8,bronze:1") == {
            "gold": 8, "bronze": 1
        }
        assert parse_tenant_spec("solo") == {"solo": 1}
        for bad in ("", "a:x", "a:0", "a:1,a:2"):
            with pytest.raises(InputError):
                parse_tenant_spec(bad)


class TestSynthesize:
    def test_deterministic_in_seed(self):
        scenario = SCENARIOS["mixed"]
        first = synthesize(scenario, 16, 200, seed=7)
        second = synthesize(scenario, 16, 200, seed=7)
        other = synthesize(scenario, 16, 200, seed=8)
        assert first.events == second.events
        assert first.events != other.events

    def test_respects_the_scenario_mix(self):
        trace = synthesize(SCENARIOS["multicast"], 16, 100, seed=3)
        assert trace.multicast_events == 100
        assert all(2 <= e.words <= 8 for e in trace.events)
        unicast = synthesize(SCENARIOS["hotspot"], 16, 100, seed=3)
        assert unicast.multicast_events == 0
        assert unicast.tenants == {"default": 1}

    def test_tenant_shares_drive_attribution(self):
        trace = synthesize(SCENARIOS["tenants"], 16, 400, seed=5)
        by_tenant = {}
        for event in trace.events:
            by_tenant[event.tenant] = by_tenant.get(event.tenant, 0) + 1
        # Equal shares: both classes appear in force (not exact halves).
        assert by_tenant["gold"] > 100
        assert by_tenant["bronze"] > 100


class TestTraceRoundTrip:
    def test_save_load_identity(self, tmp_path):
        trace = synthesize(SCENARIOS["mixed"], 16, 64, seed=2)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = load_trace(path)
        assert loaded.n == trace.n
        assert loaded.scenario == trace.scenario
        assert loaded.tenants == trace.tenants
        assert loaded.seed == 2
        assert loaded.events == trace.events

    def test_loader_validates(self, tmp_path):
        def reject(document):
            path = tmp_path / "bad.json"
            path.write_text(json.dumps(document))
            with pytest.raises(InputError):
                load_trace(path)

        good = synthesize(SCENARIOS["uniform"], 4, 4, seed=0).to_document()
        reject({**good, "version": 99})  # newer than this build
        reject({**good, "n": 0})
        reject({**good, "events": [{"tenant": "a", "dests": [9]}]})
        reject({**good, "events": [{"tenant": "a", "dests": [1, 1]}]})
        reject({**good, "events": [{"tenant": "", "dests": [1]}]})
        reject({**good, "events": "nope"})
        with pytest.raises(InputError):
            load_trace(tmp_path / "missing.json")

    def test_document_defaults(self):
        trace = Trace.from_document(
            {"version": 1, "n": 4, "events": [{"dests": [2]}]}
        )
        assert trace.tenants == {"default": 1}
        assert trace.events[0].tenant == "default"
        assert trace.scenario == "recorded"


class TestReplay:
    def replay(self, scenario, *, tenants=None, events=256, **kwargs):
        config = GatewayConfig(
            m=3, queue_capacity=32, engine="vector", tenants=tenants
        )

        async def run():
            async with AsyncGateway(config) as gateway:
                return await replay_scenario(
                    gateway, scenario, events=events, seed=1, **kwargs
                )

        return asyncio.run(run())

    def test_uniform_full_delivery(self):
        report = self.replay("uniform")
        assert report.words_delivered == report.words_offered == 256
        assert report.check_slos(require_delivery=True) == []
        assert report.cycles and report.offered_load is not None

    def test_multicast_copies_accounted(self):
        report = self.replay("multicast", events=64)
        assert report.multicast_requests == 64
        assert report.multicast_copies == report.words_offered
        assert report.multicast_delivered == report.multicast_copies
        assert report.unicast_words == 0

    def test_tenant_classes_reported_separately(self):
        scenario = SCENARIOS["tenants"]
        report = self.replay(
            scenario, tenants=scenario.tenant_weights, events=300
        )
        assert set(report.per_tenant) == {"gold", "bronze"}
        for row in report.per_tenant.values():
            assert row.delivered == row.offered
            assert row.latencies

    def test_slo_violations_reported(self):
        report = self.replay("hotspot", events=200)
        # A 0-cycle SLO is unmeetable: every class must violate it.
        violations = report.check_slos(slo_p50=0, slo_p99=0)
        assert len(violations) == 2
        assert "p50" in violations[0] and "p99" in violations[1]
        assert report.check_slos() == []

    def test_replay_trace_rejects_bad_burst(self):
        trace = synthesize(SCENARIOS["uniform"], 8, 4, seed=0)

        async def run():
            async with AsyncGateway(GatewayConfig(m=3)) as gateway:
                return await replay_trace(gateway, trace, burst=0)

        with pytest.raises(InputError):
            asyncio.run(run())

    def test_unknown_scenario_rejected(self):
        with pytest.raises(InputError):
            self.replay("rush-hour")


class TestReplayCli:
    def test_replay_scenario_text(self, capsys):
        code = main(
            [
                "replay", "16", "--scenario", "uniform",
                "--events", "128", "--require-delivery",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario : uniform" in out
        assert "128 offered, 128 delivered" in out

    def test_replay_json_and_save_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        code = main(
            [
                "replay", "16", "--scenario", "multicast",
                "--events", "64", "--json",
                "--save-trace", str(trace_path),
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["multicast"]["delivered"] == (
            document["multicast"]["copies"]
        )
        assert document["slo_violations"] == []
        # The saved trace replays identically from disk.
        code = main(
            ["replay", "16", "--trace", str(trace_path), "--json"]
        )
        assert code == 0
        again = json.loads(capsys.readouterr().out)
        assert again["words_offered"] == document["words_offered"]

    def test_replay_slo_failure_exits_one(self, capsys):
        code = main(
            [
                "replay", "16", "--scenario", "hotspot",
                "--events", "64", "--slo-p99", "0",
            ]
        )
        assert code == 1
        assert "SLO violation" in capsys.readouterr().err

    def test_replay_input_errors_exit_two(self, capsys):
        assert main(["replay", "16", "--scenario", "nope"]) == 2
        assert main(["replay"]) == 2  # no size, no --connect
        assert main(["replay", "12"]) == 2  # not a power of two
        err = capsys.readouterr().err
        assert "error:" in err

    def test_replay_trace_size_mismatch(self, tmp_path, capsys):
        trace = synthesize(SCENARIOS["uniform"], 8, 4, seed=0)
        path = tmp_path / "small.json"
        trace.save(path)
        assert main(["replay", "16", "--trace", str(path)]) == 2
        assert "N=8" in capsys.readouterr().err
