"""Copy-network front end: multicast expansion and ground-truth routing."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.bnb import BNBNetwork
from repro.exceptions import InputError
from repro.traffic import MulticastRequest, expand_copies, route_copies


class TestMulticastRequest:
    def test_fanout_and_validation(self):
        request = MulticastRequest(source=0, destinations=(1, 2, 5))
        assert request.fanout == 3
        with pytest.raises(InputError):
            MulticastRequest(source=0, destinations=())
        with pytest.raises(InputError):
            MulticastRequest(source=0, destinations=(3, 3))

    def test_destinations_coerced_to_tuple(self):
        request = MulticastRequest(source=1, destinations=[4, 2])
        assert request.destinations == (4, 2)


class TestExpandCopies:
    def test_disjoint_requests_fit_one_round(self):
        plan = expand_copies(
            [
                MulticastRequest(0, (0, 1)),
                MulticastRequest(1, (2, 3)),
            ],
            n=4,
        )
        assert plan.round_count == 1
        assert plan.copies == 4
        assert plan.expansion_ratio == 2.0

    def test_contending_copies_spread_over_rounds(self):
        # Three requests all want output 0: its third copy forces a
        # third round, everything else packs into the earliest rounds.
        plan = expand_copies(
            [
                MulticastRequest(0, (0, 1)),
                MulticastRequest(1, (0, 2)),
                MulticastRequest(2, (0, 3)),
            ],
            n=4,
        )
        assert plan.round_count == 3
        assert [len(r) for r in plan.rounds] == [4, 1, 1]

    def test_copy_j_of_a_destination_lands_in_round_j(self):
        plan = expand_copies(
            [MulticastRequest(k, (7,)) for k in range(5)], n=8
        )
        for j, copy_round in enumerate(plan.rounds):
            assert copy_round.destinations == [7]
            assert copy_round.origins == [(j, 0)]

    def test_out_of_range_destination_rejected(self):
        with pytest.raises(InputError):
            expand_copies([MulticastRequest(0, (8,))], n=8)
        with pytest.raises(InputError):
            expand_copies([], n=0)

    def test_empty_workload(self):
        plan = expand_copies([], n=4)
        assert plan.round_count == 0
        assert plan.copies == 0
        assert plan.expansion_ratio == 0.0


@st.composite
def multicast_workloads(draw):
    """Random multicast workloads, fanouts skewed toward hot outputs."""
    m = draw(st.sampled_from([1, 2, 3, 4]))
    n = 1 << m
    count = draw(st.integers(min_value=0, max_value=12))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    requests = []
    for source in range(count):
        fanout = rng.randint(1, n)
        # Sampling without replacement from a skewed order biases the
        # workload toward low outputs — heavy contention on purpose.
        dests = sorted(range(n), key=lambda d: (rng.random() * (d + 1)))
        requests.append(
            MulticastRequest(
                source=source,
                destinations=tuple(dests[:fanout]),
                payload=f"req{source}",
            )
        )
    return m, requests


class TestExpansionProperties:
    @given(multicast_workloads())
    @settings(max_examples=120, deadline=None)
    def test_rounds_partition_every_copy_conflict_free(self, case):
        m, requests = case
        n = 1 << m
        plan = expand_copies(requests, n)
        assert plan.copies == sum(r.fanout for r in requests)
        # Round count is the information-theoretic minimum: the worst
        # per-output multiplicity across the whole workload.
        multiplicity = {}
        for request in requests:
            for dest in request.destinations:
                multiplicity[dest] = multiplicity.get(dest, 0) + 1
        assert plan.round_count == (
            max(multiplicity.values()) if multiplicity else 0
        )
        seen = set()
        for copy_round in plan.rounds:
            # Conflict-free: distinct destinations within a round.
            assert len(set(copy_round.destinations)) == len(copy_round)
            assert len(copy_round.origins) == len(copy_round)
            for dest, origin in zip(
                copy_round.destinations, copy_round.origins
            ):
                request_index, copy_index = origin
                assert requests[request_index].destinations[
                    copy_index
                ] == dest
                assert origin not in seen  # each copy exactly once
                seen.add(origin)
        assert len(seen) == plan.copies

    @given(multicast_workloads())
    @settings(max_examples=40, deadline=None)
    def test_route_copies_delivers_every_payload(self, case):
        m, requests = case
        network = BNBNetwork(m)
        delivered = route_copies(network, requests)
        for output, payloads in enumerate(delivered):
            expected = [
                request.payload
                for request in requests
                if output in request.destinations
            ]
            # FIFO per output: round order == request submission order.
            assert payloads == expected
