"""Verilog emission and round-trip re-import."""

import itertools

import pytest

from repro.exceptions import ConfigurationError
from repro.hardware import (
    GateType,
    Netlist,
    build_bsn_netlist,
    build_function_node,
    build_splitter_netlist,
    build_switch_cell,
    emit_verilog,
    parse_verilog,
    sanitize_identifier,
)
from repro.permutations import random_permutation


class TestSanitize:
    def test_brackets(self):
        assert sanitize_identifier("s[3]") == "s_3"

    def test_plain_passthrough(self):
        assert sanitize_identifier("clk_enable") == "clk_enable"

    def test_leading_digit(self):
        assert sanitize_identifier("3x")[0] not in "0123456789"


class TestEmission:
    def test_module_structure(self):
        text = emit_verilog(build_function_node())
        assert text.startswith("module function_node (")
        assert text.rstrip().endswith("endmodule")
        assert "input wire x1" in text
        assert "output wire z_up" in text

    def test_one_assign_per_gate_plus_outputs(self):
        netlist = build_function_node()
        text = emit_verilog(netlist)
        assigns = [l for l in text.splitlines() if l.strip().startswith("assign")]
        assert len(assigns) == netlist.gate_count + len(netlist.outputs)

    def test_mux_expression(self):
        text = emit_verilog(build_switch_cell())
        assert "?" in text and ":" in text

    def test_custom_module_name(self):
        text = emit_verilog(build_function_node(), module_name="fig5 node")
        assert text.startswith("module fig5_node (")

    def test_constants(self):
        netlist = Netlist("consts")
        one = netlist.add_gate(GateType.CONST1, ())
        zero = netlist.add_gate(GateType.CONST0, ())
        netlist.mark_output("hi", one)
        netlist.mark_output("lo", zero)
        text = emit_verilog(netlist)
        assert "1'b1" in text and "1'b0" in text

    def test_all_gate_types_emit(self):
        netlist = Netlist("allgates")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        for kind in (
            GateType.BUF,
            GateType.NOT,
            GateType.AND,
            GateType.OR,
            GateType.XOR,
            GateType.NAND,
            GateType.NOR,
            GateType.XNOR,
        ):
            inputs = (a,) if kind in (GateType.BUF, GateType.NOT) else (a, b)
            netlist.mark_output(kind.value, netlist.add_gate(kind, inputs))
        text = emit_verilog(netlist)
        assert "~(" in text  # negated binaries present
        parsed = parse_verilog(text)
        for va in (0, 1):
            for vb in (0, 1):
                assert parsed.evaluate({"a": va, "b": vb}) == netlist.evaluate(
                    {"a": va, "b": vb}
                )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [build_function_node, build_switch_cell, lambda: build_splitter_netlist(2)],
    )
    def test_small_cells_roundtrip_exhaustively(self, builder):
        netlist = builder()
        parsed = parse_verilog(emit_verilog(netlist))
        names = list(netlist.inputs)
        for values in itertools.product([0, 1], repeat=len(names)):
            assignment = dict(zip(names, values))
            original = netlist.evaluate(assignment)
            sanitized = {
                sanitize_identifier(k): v for k, v in assignment.items()
            }
            reparsed = parsed.evaluate(sanitized)
            for name, value in original.items():
                assert reparsed[sanitize_identifier(name)] == value

    def test_bsn_roundtrip_behaviour(self):
        netlist = build_bsn_netlist(3)
        parsed = parse_verilog(emit_verilog(netlist))
        # The parser reads the final output-binding assigns as BUFs.
        assert parsed.gate_count == netlist.gate_count + len(netlist.outputs)
        import random

        rng = random.Random(3)
        for _ in range(10):
            bits = [1] * 4 + [0] * 4
            rng.shuffle(bits)
            assignment = {f"s[{j}]": bits[j] for j in range(8)}
            sanitized = {f"s_{j}": bits[j] for j in range(8)}
            original = netlist.evaluate(assignment)
            reparsed = parsed.evaluate(sanitized)
            for j in range(8):
                assert reparsed[f"o_{j}"] == original[f"o[{j}]"]

    def test_bnb_netlist_roundtrip(self):
        from repro.hardware import build_bnb_netlist

        netlist, ports = build_bnb_netlist(2)
        parsed = parse_verilog(emit_verilog(netlist))
        pi = random_permutation(4, rng=8)
        assignment = ports.input_assignment(pi.to_list())
        sanitized = {sanitize_identifier(k): v for k, v in assignment.items()}
        reparsed = parsed.evaluate(sanitized)
        original = netlist.evaluate(assignment)
        assert all(
            reparsed[sanitize_identifier(k)] == v for k, v in original.items()
        )


class TestParserErrors:
    def test_unparseable_line(self):
        with pytest.raises(ConfigurationError, match="unparseable"):
            parse_verilog("module m (\n);\nalways @(posedge clk) x <= y;\nendmodule")

    def test_forward_reference(self):
        bad = "\n".join(
            [
                "module m (",
                "  input wire a,",
                "  output wire y",
                ");",
                "  wire n1, n2;",
                "  assign n1 = n2 & a;",  # n2 not yet assigned
                "  assign n2 = a;",
                "  assign y = n1;",
                "endmodule",
            ]
        )
        with pytest.raises(ConfigurationError, match="before assignment"):
            parse_verilog(bad)

    def test_unsupported_expression(self):
        bad = "\n".join(
            [
                "module m (",
                "  input wire a,",
                "  output wire y",
                ");",
                "  wire n1;",
                "  assign n1 = a + a;",
                "  assign y = n1;",
                "endmodule",
            ]
        )
        with pytest.raises(ConfigurationError, match="unsupported"):
            parse_verilog(bad)
