"""Tests for fault injection, replay and coverage experiments."""

import pytest

from repro.core import BNBNetwork, Word
from repro.exceptions import FaultError
from repro.faults import (
    SwitchCoordinate,
    enumerate_switch_coordinates,
    extract_controls,
    fault_coverage_experiment,
    inject_stuck_control,
    misrouted_outputs,
    replay_controls,
)
from repro.permutations import random_permutation


def routed_words(m, seed=0):
    net = BNBNetwork(m)
    pi = random_permutation(1 << m, rng=seed)
    words = [Word(address=pi(j), payload=j) for j in range(1 << m)]
    outputs, record = net.route(words, record=True)
    assert record is not None
    return words, outputs, record


class TestEnumeration:
    def test_count_matches_per_slice_switch_total(self):
        for m in (2, 3, 4):
            expected = sum(
                (1 << i) * ((1 << (m - i)) // 2) * (m - i) for i in range(m)
            )
            assert len(enumerate_switch_coordinates(m)) == expected

    def test_coordinates_unique(self):
        coords = enumerate_switch_coordinates(3)
        assert len(coords) == len(set(coords))


class TestReplay:
    def test_replay_reproduces_fault_free(self):
        words, outputs, record = routed_words(4)
        replayed = replay_controls(4, words, extract_controls(record))
        assert [w.address for w in replayed] == [w.address for w in outputs]

    def test_replay_validates_length(self):
        words, _outputs, record = routed_words(3)
        with pytest.raises(ValueError):
            replay_controls(3, words[:4], extract_controls(record))

    def test_replay_missing_splitter(self):
        words, _outputs, record = routed_words(3)
        table = extract_controls(record)
        del table[(0, 0, 0, 0)]
        with pytest.raises(FaultError):
            replay_controls(3, words, table)


class TestInjection:
    def test_inject_flips_one_switch(self):
        _words, _outputs, record = routed_words(3)
        table = extract_controls(record)
        original = table[(0, 0, 0, 0)][0]
        coordinate = SwitchCoordinate(0, 0, 0, 0, 0)
        perturbed = inject_stuck_control(table, coordinate, 1 - original)
        assert perturbed[(0, 0, 0, 0)][0] == 1 - original
        # Original untouched.
        assert table[(0, 0, 0, 0)][0] == original

    def test_activated_fault_misroutes_detectably(self):
        words, _outputs, record = routed_words(3, seed=5)
        table = extract_controls(record)
        coordinate = SwitchCoordinate(0, 0, 0, 0, 0)
        stuck = 1 - table[(0, 0, 0, 0)][0]
        faulty = replay_controls(
            3, words, inject_stuck_control(table, coordinate, stuck)
        )
        bad = misrouted_outputs(faulty)
        assert len(bad) >= 2
        assert len(bad) % 2 == 0  # packets displace in pairs

    def test_inert_fault_is_silent(self):
        words, outputs, record = routed_words(3, seed=6)
        table = extract_controls(record)
        coordinate = SwitchCoordinate(0, 0, 0, 0, 0)
        same = table[(0, 0, 0, 0)][0]
        faulty = replay_controls(
            3, words, inject_stuck_control(table, coordinate, same)
        )
        assert misrouted_outputs(faulty) == []

    def test_validation(self):
        _words, _outputs, record = routed_words(2)
        table = extract_controls(record)
        with pytest.raises(FaultError):
            inject_stuck_control(table, SwitchCoordinate(9, 0, 0, 0, 0), 1)
        with pytest.raises(FaultError):
            inject_stuck_control(table, SwitchCoordinate(0, 0, 0, 0, 99), 1)
        with pytest.raises(FaultError):
            inject_stuck_control(table, SwitchCoordinate(0, 0, 0, 0, 0), 2)


class TestCoverageExperiment:
    def test_report_statistics(self):
        report = fault_coverage_experiment(3, trials=40, seed=2)
        assert report.trial_count == 40
        assert 0.0 <= report.activation_rate <= 1.0
        # Every activated single stuck-at in the BNB moves packets:
        # the address check catches all of them.
        assert report.detection_rate_given_activation == 1.0
        assert report.max_blast_radius >= 2

    def test_histogram_sums_to_trials(self):
        report = fault_coverage_experiment(3, trials=25, seed=3)
        assert sum(report.blast_radius_histogram().values()) == 25

    def test_fixed_coordinate(self):
        coordinate = SwitchCoordinate(0, 0, 0, 0, 0)
        report = fault_coverage_experiment(
            3, trials=10, seed=4, coordinate=coordinate
        )
        assert all(t.coordinate == coordinate for t in report.trials)

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            fault_coverage_experiment(3, trials=0)
