"""Path-multiplicity tests: the banyan property and the Benes slack."""

import pytest

from repro.baselines import BenesNetwork
from repro.topology import (
    baseline_network,
    butterfly_network,
    flip_network,
    is_banyan,
    omega_network,
    path_count_matrix,
    path_multiplicity,
)


class TestBanyanClass:
    @pytest.mark.parametrize(
        "build", [baseline_network, omega_network, butterfly_network, flip_network]
    )
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_unique_path(self, build, n):
        assert is_banyan(build(n))
        assert path_multiplicity(build(n)) == 1

    def test_capacity_follows_from_banyan(self):
        """Unique paths imply distinct settings -> distinct permutations,
        so the enumerated capacity must be 2^S (cross-check)."""
        from repro.topology import permutation_capacity

        net = baseline_network(8)
        assert is_banyan(net)
        assert permutation_capacity(net) == 1 << net.switch_count


class TestBenesSlack:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_benes_has_2_to_m_minus_1_paths(self, m):
        fabric = BenesNetwork(m).fabric
        assert path_multiplicity(fabric) == 1 << (m - 1)

    def test_matrix_rows_sum_to_settings_reachability(self):
        """Each row of the path matrix sums to 2^(stages): every switch
        doubles the reachable leaf count."""
        fabric = BenesNetwork(3).fabric
        matrix = path_count_matrix(fabric)
        for row in matrix:
            assert sum(row) == 1 << fabric.stage_count


class TestErrors:
    def test_non_uniform_raises(self):
        """A network with identity wirings keeps packets inside their
        2-line tube: path counts are 2^stages within the tube and zero
        outside, so multiplicity is undefined."""
        from repro.topology import MultistageNetwork, identity_connection

        tube = MultistageNetwork(
            n=4,
            stage_count=2,
            wirings=[identity_connection(4)],
            name="tube",
        )
        with pytest.raises(ValueError, match="not uniform"):
            path_multiplicity(tube)
