"""Gate-level cells vs their reference truth functions (Figs. 4-5)."""

import itertools

import pytest

from repro.core import Arbiter, Splitter
from repro.hardware import (
    GateType,
    build_arbiter_netlist,
    build_function_node,
    build_splitter_netlist,
    build_switch_cell,
    function_node_truth,
    switch_cell_truth,
)


class TestFunctionNode:
    def test_truth_table_exhaustive(self):
        netlist = build_function_node()
        for x1, x2, z_down in itertools.product([0, 1], repeat=3):
            got = netlist.evaluate({"x1": x1, "x2": x2, "z_down": z_down})
            z_up, y1, y2 = function_node_truth(x1, x2, z_down)
            assert (got["z_up"], got["y1"], got["y2"]) == (z_up, y1, y2)

    def test_few_gates(self):
        """'The function node ... consists of few gates.'"""
        assert build_function_node().gate_count == 4

    def test_reference_rejects_non_bits(self):
        with pytest.raises(ValueError):
            function_node_truth(2, 0, 0)


class TestSwitchCell:
    def test_truth_table_exhaustive(self):
        netlist = build_switch_cell()
        for a, b, control in itertools.product([0, 1], repeat=3):
            got = netlist.evaluate({"a": a, "b": b, "control": control})
            upper, lower = switch_cell_truth(a, b, control)
            assert (got["out_upper"], got["out_lower"]) == (upper, lower)

    def test_two_muxes(self):
        assert build_switch_cell().gate_census() == {GateType.MUX2: 2}

    def test_reference_rejects_non_bits(self):
        with pytest.raises(ValueError):
            switch_cell_truth(0, 1, 2)


class TestArbiterNetlist:
    @pytest.mark.parametrize("p", [2, 3])
    def test_matches_functional_model(self, p):
        netlist = build_arbiter_netlist(p)
        arbiter = Arbiter(p)
        n = 1 << p
        for bits in itertools.product([0, 1], repeat=n):
            if sum(bits) % 2:
                continue  # the contract assumes even weight
            got = netlist.evaluate({f"s[{j}]": bits[j] for j in range(n)})
            assert [got[f"f[{j}]"] for j in range(n)] == arbiter.flags(list(bits))

    def test_node_gate_count(self):
        """4 gates per function node, 2**p - 1 nodes."""
        for p in (2, 3, 4):
            netlist = build_arbiter_netlist(p)
            assert netlist.gate_count == 4 * ((1 << p) - 1)
            assert netlist.group_census() == {"fn": 4 * ((1 << p) - 1)}

    def test_rejects_p1(self):
        with pytest.raises(ValueError):
            build_arbiter_netlist(1)


class TestSplitterNetlist:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_matches_functional_model(self, p):
        netlist = build_splitter_netlist(p)
        splitter = Splitter(p)
        n = 1 << p
        for bits in itertools.product([0, 1], repeat=n):
            if p >= 2 and sum(bits) % 2:
                continue
            if p == 1 and bits[0] == bits[1]:
                continue
            got = netlist.evaluate({f"s[{j}]": bits[j] for j in range(n)})
            expected, record = splitter.route_bits(list(bits), record=True)
            assert [got[f"o[{j}]"] for j in range(n)] == expected
            assert record is not None
            assert [got[f"c[{t}]"] for t in range(n // 2)] == record.controls

    def test_group_census_separates_units(self):
        census = build_splitter_netlist(3).group_census()
        assert census["fn"] == 4 * 7      # arbiter nodes
        assert census["swctl"] == 4       # one XOR per switch
        assert census["sw"] == 8          # two MUX2 per switch cell

    def test_sp1_is_switch_only(self):
        census = build_splitter_netlist(1).group_census()
        assert census == {"sw": 2}

    def test_rejects_p0(self):
        with pytest.raises(ValueError):
            build_splitter_netlist(0)
