"""Gate-level stuck-at fault analysis tests."""

import itertools

import pytest

from repro.exceptions import FaultError
from repro.hardware import build_function_node, build_splitter_netlist, build_switch_cell
from repro.hardware.fault_hw import (
    all_single_stuck_at_faults,
    evaluate_with_faults,
    single_stuck_at_coverage,
)


def exhaustive_vectors(netlist):
    names = list(netlist.inputs)
    return [
        dict(zip(names, values))
        for values in itertools.product([0, 1], repeat=len(names))
    ]


class TestEvaluateWithFaults:
    def test_no_faults_is_plain_evaluation(self):
        netlist = build_function_node()
        vector = {"x1": 1, "x2": 0, "z_down": 1}
        assert evaluate_with_faults(netlist, vector, {}) == netlist.evaluate(
            vector
        )

    def test_stuck_input(self):
        netlist = build_function_node()
        x1_net = netlist.inputs["x1"]
        # x1 stuck at 0: behaves as if x1 were 0 regardless of the vector.
        forced = evaluate_with_faults(
            netlist, {"x1": 1, "x2": 0, "z_down": 1}, {x1_net: 0}
        )
        assert forced == netlist.evaluate({"x1": 0, "x2": 0, "z_down": 1})

    def test_stuck_internal_net(self):
        netlist = build_switch_cell()
        # Force the first mux output; the second output is unaffected.
        out_upper_net = netlist.outputs["out_upper"]
        result = evaluate_with_faults(
            netlist, {"a": 0, "b": 1, "control": 0}, {out_upper_net: 1}
        )
        assert result["out_upper"] == 1
        assert result["out_lower"] == 1  # fault-free value

    def test_validation(self):
        netlist = build_function_node()
        with pytest.raises(FaultError):
            evaluate_with_faults(netlist, {"x1": 0, "x2": 0, "z_down": 0}, {0: 2})
        with pytest.raises(FaultError):
            evaluate_with_faults(
                netlist, {"x1": 0, "x2": 0, "z_down": 0}, {9999: 1}
            )
        with pytest.raises(ValueError):
            evaluate_with_faults(netlist, {"x1": 0}, {})


class TestCoverage:
    def test_function_node_fully_testable(self):
        """Every single stuck-at in the Fig. 5 node is detectable with
        the exhaustive 8-vector set: the cell has no redundancy."""
        netlist = build_function_node()
        report = single_stuck_at_coverage(netlist, exhaustive_vectors(netlist))
        assert report.coverage == 1.0
        assert report.undetected == []

    def test_switch_cell_fully_testable(self):
        netlist = build_switch_cell()
        report = single_stuck_at_coverage(netlist, exhaustive_vectors(netlist))
        assert report.coverage == 1.0

    def test_splitter_has_root_redundancy(self):
        """A genuine finding: the arbiter's root node is partially
        redundant.  Its parent flag is wired to its own z_up (the echo
        rule), so the node computes ``AND(z, z)`` and ``OR(~z, z) == 1``
        — logic whose faults no input can expose.  Operational
        (balanced) vectors therefore top out well below full coverage."""
        netlist = build_splitter_netlist(2)
        vectors = [
            dict(zip([f"s[{j}]" for j in range(4)], bits))
            for bits in itertools.product([0, 1], repeat=4)
            if sum(bits) % 2 == 0
        ]
        report = single_stuck_at_coverage(netlist, vectors)
        assert 0.55 < report.coverage < 0.85
        assert report.undetected  # the redundant root logic

    def test_optimizer_removes_the_redundancy(self):
        """After optimization (idempotence + tautology folding) the
        splitter's surviving gates are fully testable by the
        operational vectors: the redundancy was exactly the root node."""
        from repro.hardware.synthesis import optimize

        netlist = build_splitter_netlist(2)
        optimized, report = optimize(netlist)
        assert optimized.gate_count < netlist.gate_count
        vectors = [
            dict(zip([f"s[{j}]" for j in range(4)], bits))
            for bits in itertools.product([0, 1], repeat=4)
            if sum(bits) % 2 == 0
        ]
        coverage = single_stuck_at_coverage(optimized, vectors)
        baseline = single_stuck_at_coverage(netlist, vectors)
        assert coverage.coverage > baseline.coverage

    def test_single_vector_misses_faults(self):
        netlist = build_function_node()
        report = single_stuck_at_coverage(
            netlist, [{"x1": 0, "x2": 0, "z_down": 0}]
        )
        assert report.coverage < 1.0
        assert report.undetected

    def test_fault_list_size(self):
        netlist = build_function_node()
        faults = all_single_stuck_at_faults(netlist)
        # 3 inputs + 4 gates, stuck at 0 and at 1.
        assert len(faults) == 2 * 7

    def test_needs_vectors(self):
        with pytest.raises(ValueError):
            single_stuck_at_coverage(build_function_node(), [])
