"""The compiled routing plan: cached index tables behind the fast path."""

import numpy as np
import pytest

from repro.core import BNBNetwork, compiled_plan
from repro.core.plan import (
    stage_take_indices,
    vector_apply_controls,
    vector_splitter_controls,
)
from repro.core.splitter import Splitter
from repro.permutations import random_permutation


class TestPlanCache:
    def test_same_object_per_m(self):
        """The plan is built once per size and shared thereafter."""
        assert compiled_plan(4) is compiled_plan(4)
        assert compiled_plan(4) is not compiled_plan(5)

    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5])
    def test_shape_matches_paper_recursion(self, m):
        """Stage i has 2^i nested networks of size 2^(m-i), each
        contributing m-i inner passes (Section III structure)."""
        plan = compiled_plan(m)
        assert plan.m == m and plan.n == 1 << m
        assert len(plan.stages) == m
        for i, stage in enumerate(plan.stages):
            assert stage.stage == i
            assert stage.nested_count == 1 << i
            assert stage.block_exp == m - i
            assert len(stage.inner_widths) == m - i
            assert stage.inner_widths[0] == 1 << (m - i)
            # Widths halve pass by pass down the nested recursion.
            for a, b in zip(stage.inner_widths, stage.inner_widths[1:]):
                assert b == a // 2

    @pytest.mark.parametrize("m", [2, 3, 4, 5])
    def test_gathers_are_permutations(self, m):
        plan = compiled_plan(m)
        identity = np.arange(plan.n)
        for stage in plan.stages:
            for gather in stage.inner_gathers:
                if gather is not None:
                    assert np.array_equal(np.sort(gather), identity)
            if stage.stage_gather is not None:
                assert np.array_equal(np.sort(stage.stage_gather), identity)

    def test_line_groups_partition_lines(self):
        plan = compiled_plan(4)
        for stage, groups in enumerate(plan.line_groups):
            flat = sorted(
                line for group in groups for line in group.tolist()
            )
            assert flat == list(range(plan.n)), stage

    def test_tables_are_immutable(self):
        plan = compiled_plan(3)
        with pytest.raises(ValueError):
            plan.identity[0] = 99


class TestVectorKernels:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_splitter_controls_match_object_model(self, p):
        rng = np.random.default_rng(p)
        splitter = Splitter(p, check_balance=False)
        blocks = rng.integers(0, 2, size=(25, 1 << p))
        controls = vector_splitter_controls(blocks)
        for row in range(blocks.shape[0]):
            assert (
                controls[row].tolist()
                == splitter.controls(blocks[row].tolist())
            )

    def test_apply_controls_swaps_exactly_the_set_pairs(self):
        lines = np.array([[10, 11, 12, 13]])
        out = vector_apply_controls(lines, np.array([[1, 0]]))
        assert out.tolist() == [[11, 10, 12, 13]]

    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 6])
    def test_stage_take_composition_equals_route(self, m):
        """Composing per-stage take indices reproduces the reference
        route for every stage prefix, not just end to end."""
        n = 1 << m
        net = BNBNetwork(m)
        plan = compiled_plan(m)
        for seed in range(5):
            pi = np.array(random_permutation(n, rng=seed).to_list())
            lines = pi
            for stage in plan.stages:
                lines = lines[stage_take_indices(plan, stage, lines)]
            assert np.array_equal(lines, np.arange(n))
            assert np.array_equal(net.route_fast(pi), np.arange(n))
