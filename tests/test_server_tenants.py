"""Per-tenant QoS in the admission path: weighted scheduling, starvation
protection, accounting, and the wire/metrics surfaces (docs/traffic.md)."""

import asyncio

import pytest

from repro.exceptions import InputError
from repro.server import (
    DEFAULT_TENANT,
    AsyncGateway,
    GatewayConfig,
    QueueEntry,
    VirtualOutputQueues,
)


def entry(dest, tenant=DEFAULT_TENANT, cycle=0, payload=None):
    return QueueEntry(
        destination=dest,
        payload=payload,
        enqueued_cycle=cycle,
        tenant=tenant,
    )


class TestTenantQueueScheduling:
    def test_swrr_serves_in_weight_ratio(self):
        voqs = VirtualOutputQueues(
            4, capacity=64, tenants={"gold": 3, "bronze": 1}
        )
        for k in range(16):
            voqs.admit(entry(0, "gold", cycle=k))
            voqs.admit(entry(0, "bronze", cycle=k))
        served = [voqs.pop_heads(1)[0].tenant for _ in range(16)]
        # Smoothed weighted round-robin: exactly weight-proportional
        # service over any window while both classes stay backlogged.
        assert served.count("gold") == 12
        assert served.count("bronze") == 4
        # Interleaved, not batched: bronze is served inside the window.
        assert "bronze" in served[:5]

    def test_single_backlogged_class_bypasses_the_scheduler(self):
        voqs = VirtualOutputQueues(4, capacity=8, tenants={"gold": 7})
        voqs.admit(entry(1, "gold"))
        assert voqs.pop_heads(1)[0].tenant == "gold"

    def test_unknown_tenant_auto_registers_with_weight_one(self):
        voqs = VirtualOutputQueues(4, capacity=8, tenants={"gold": 2})
        voqs.admit(entry(2, "walkin"))
        rows = voqs.tenant_snapshot()
        assert rows["walkin"]["weight"] == 1
        assert rows["walkin"]["queued"] == 1

    def test_starvation_rescue_overrides_the_weighted_pick(self):
        voqs = VirtualOutputQueues(
            4,
            capacity=256,
            tenants={"gold": 100, "bronze": 1},
            starvation_cycles=10,
        )
        # One ancient bronze word behind a wall of much newer gold.
        voqs.admit(entry(0, "bronze", cycle=0))
        for k in range(64):
            voqs.admit(entry(0, "gold", cycle=100 + k))
        first = voqs.pop_heads(1)[0]
        assert first.tenant == "bronze"
        assert voqs.tenant_snapshot()["bronze"]["starvation_rescues"] == 1

    def test_fifo_order_preserved_within_a_tenant(self):
        voqs = VirtualOutputQueues(4, capacity=16, tenants={"a": 1, "b": 1})
        for k in range(4):
            voqs.admit(entry(3, "a", cycle=k, payload=f"a{k}"))
        served = []
        while voqs.total:
            served.extend(e.payload for e in voqs.pop_heads(1))
        assert served == ["a0", "a1", "a2", "a3"]

    def test_requeue_front_returns_to_the_owning_tenant(self):
        voqs = VirtualOutputQueues(4, capacity=16, tenants={"a": 1, "b": 8})
        voqs.admit(entry(0, "a", cycle=0, payload="head"))
        popped = voqs.pop_heads(1)
        voqs.requeue_front(popped)
        rows = voqs.tenant_snapshot()
        assert rows["a"]["requeued"] == 1
        assert rows["a"]["queued"] == 1

    def test_tenant_mode_validates_weights(self):
        with pytest.raises(ValueError):
            VirtualOutputQueues(4, capacity=8, tenants={"bad": 0})
        with pytest.raises(ValueError):
            VirtualOutputQueues(4, capacity=8, tenants={"": 2})
        with pytest.raises(ValueError):
            VirtualOutputQueues(4, capacity=8, tenants={"b": True})

    def test_untenanted_mode_has_no_tenant_surface(self):
        voqs = VirtualOutputQueues(4, capacity=8)
        assert voqs.tenants is None
        assert voqs.tenant_snapshot() is None
        assert "tenants" not in voqs.snapshot()

    def test_snapshot_counts_offered_accepted_per_tenant(self):
        voqs = VirtualOutputQueues(2, capacity=1, tenants={"a": 1})
        assert voqs.try_admit(entry(0, "a")) is None
        assert voqs.try_admit(entry(0, "a")) is not None  # full -> reject
        rows = voqs.tenant_snapshot()
        assert rows["a"]["offered"] == 2
        assert rows["a"]["accepted"] == 1
        assert rows["a"]["rejected"] == 1


class TestGatewayTenants:
    def run(self, coro):
        return asyncio.run(coro)

    def test_config_validates_tenants(self):
        with pytest.raises(ValueError):
            GatewayConfig(m=2, tenants={"x": 0})
        with pytest.raises(ValueError):
            GatewayConfig(m=2, tenants={"x": 1}, starvation_cycles=0)

    def test_send_attributes_latency_to_the_tenant(self):
        async def scenario():
            config = GatewayConfig(
                m=2, queue_capacity=8, tenants={"gold": 4, "bronze": 1}
            )
            async with AsyncGateway(config) as gateway:
                await asyncio.gather(
                    *(
                        gateway.send_with_retry(k % 4, tenant="gold")
                        for k in range(8)
                    ),
                    *(
                        gateway.send_with_retry(k % 4, tenant="bronze")
                        for k in range(8)
                    ),
                )
                return gateway.tenant_snapshot()

        rows = self.run(scenario())
        for name in ("gold", "bronze"):
            assert rows[name]["delivered"] == 8
            latency = rows[name]["latency_cycles"]
            assert latency["samples"] == 8
            assert latency["p50"] is not None

    def test_stats_embeds_tenant_rows_only_in_tenant_mode(self):
        async def tenanted():
            config = GatewayConfig(m=2, tenants={"gold": 2})
            async with AsyncGateway(config) as gateway:
                await gateway.send_with_retry(1, tenant="gold")
                return gateway.stats()

        async def bare():
            async with AsyncGateway(GatewayConfig(m=2)) as gateway:
                await gateway.send_with_retry(1)
                return gateway.stats()

        stats = self.run(tenanted())
        assert stats["tenants"]["gold"]["delivered"] == 1
        assert self.run(bare())["tenants"] is None

    def test_send_batch_carries_the_tenant(self):
        async def scenario():
            config = GatewayConfig(
                m=2, queue_capacity=16, tenants={"gold": 2}
            )
            async with AsyncGateway(config) as gateway:
                result = await gateway.send_batch(
                    [0, 1, 2, 3], retry_attempts=8, tenant="gold"
                )
                return result.delivered, gateway.tenant_snapshot()

        delivered, rows = self.run(scenario())
        assert delivered == 4
        assert rows["gold"]["delivered"] == 4
        # The default class never carried a word, so it has no row
        # (rows appear on first use) or an all-zero one.
        assert rows.get(DEFAULT_TENANT, {"delivered": 0})["delivered"] == 0


class TestTenantMetrics:
    def test_repro_tenant_series_exported(self):
        from repro.obs import GatewayInstrumentation, Registry

        async def scenario():
            config = GatewayConfig(
                m=2, queue_capacity=16, tenants={"gold": 8, "bronze": 1}
            )
            async with AsyncGateway(config) as gateway:
                instrumentation = GatewayInstrumentation(
                    gateway, registry=Registry()
                ).attach()
                await asyncio.gather(
                    *(
                        gateway.send_with_retry(k % 4, tenant="gold")
                        for k in range(6)
                    )
                )
                return instrumentation.registry.render_prometheus()

        text = asyncio.run(scenario())
        assert 'repro_tenant_weight{tenant="gold"} 8' in text
        assert 'repro_tenant_delivered_total{tenant="gold"} 6' in text
        assert (
            'repro_tenant_latency_cycles_quantile{tenant="gold",q="p99"}'
            in text
        )


class TestWireTenantField:
    def test_send_and_batch_accept_tenant_over_the_wire(self):
        from repro.client import GatewayClient
        from repro.server import GatewayServer

        async def scenario():
            config = GatewayConfig(
                m=2, queue_capacity=16, tenants={"gold": 4}
            )
            async with AsyncGateway(config) as gateway:
                server = await GatewayServer(gateway).start()
                try:
                    async with GatewayClient(
                        "127.0.0.1", server.port
                    ) as client:
                        await client.send(1, tenant="gold", server_retry=True)
                        response = await client.send_batch(
                            [0, 1, 2], tenant="gold", retry=8
                        )
                        assert int(response["delivered"]) == 3
                        hello_features = client.features
                    return gateway.tenant_snapshot(), hello_features
                finally:
                    await server.stop()

        rows, features = asyncio.run(scenario())
        assert rows["gold"]["delivered"] == 4
        assert "tenants" in features

    def test_bad_tenant_field_is_rejected(self):
        from repro.server.ops import _tenant_field

        assert _tenant_field({}) is None
        assert _tenant_field({"tenant": "gold"}) == "gold"
        with pytest.raises(InputError):
            _tenant_field({"tenant": ""})
        with pytest.raises(InputError):
            _tenant_field({"tenant": 7})
