"""Unit tests for the generalized baseline network scaffold (Fig. 1)."""

import pytest

from repro.core import GeneralizedBaselineNetwork, gbn_route
from repro.topology import baseline_network


class TestStructure:
    def test_definition_2(self):
        """Stage i has 2**i boxes SB(m - i)."""
        gbn = GeneralizedBaselineNetwork(4)
        for spec in gbn.stages():
            assert spec.box_count == 1 << spec.stage
            assert spec.box_exponent == 4 - spec.stage
            assert spec.box_size == 1 << (4 - spec.stage)

    def test_fig1_inventory(self):
        """Fig. 1: B(3, SB) has 1 SB(3), 2 SB(2), 4 SB(1)."""
        gbn = GeneralizedBaselineNetwork(3)
        assert [(s.box_count, s.box_exponent) for s in gbn.stages()] == [
            (1, 3),
            (2, 2),
            (4, 1),
        ]

    def test_total_boxes(self):
        assert GeneralizedBaselineNetwork(5).total_boxes() == 31

    def test_switches_if_simple(self):
        """With sw boxes the GBN is the baseline network: (N/2) log N."""
        gbn = GeneralizedBaselineNetwork(4)
        assert gbn.switch_count_if_simple() == baseline_network(16).switch_count

    def test_box_line_range(self):
        gbn = GeneralizedBaselineNetwork(3)
        assert gbn.box_line_range(0, 0) == (0, 8)
        assert gbn.box_line_range(1, 1) == (4, 8)
        assert gbn.box_line_range(2, 3) == (6, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneralizedBaselineNetwork(0)
        gbn = GeneralizedBaselineNetwork(3)
        with pytest.raises(ValueError):
            gbn.stage_spec(3)
        with pytest.raises(ValueError):
            gbn.box_line_range(1, 2)


class TestRoutingDriver:
    def test_identity_boxes_apply_only_wirings(self):
        """With pass-through boxes the route is the composition of the
        unshuffle connections — exactly the baseline's wiring."""
        seen = []

        def passthrough(stage, box, lines):
            seen.append((stage, box, len(lines)))
            return lines

        out = gbn_route(list(range(8)), 3, passthrough)
        # Box visit pattern matches Definition 2.
        assert seen == [
            (0, 0, 8),
            (1, 0, 4),
            (1, 1, 4),
            (2, 0, 2),
            (2, 1, 2),
            (2, 2, 2),
            (2, 3, 2),
        ]
        # U_3 then U_2 composition on 8 lines.
        from repro.bits import unshuffle

        expected = unshuffle(unshuffle(list(range(8)), 3, 3), 2, 3)
        assert out == expected

    def test_box_router_output_length_checked(self):
        with pytest.raises(ValueError):
            gbn_route([0, 1], 1, lambda s, b, lines: lines[:1])

    def test_input_length_checked(self):
        with pytest.raises(ValueError):
            gbn_route([0, 1, 2], 2, lambda s, b, lines: lines)

    def test_method_delegates(self):
        gbn = GeneralizedBaselineNetwork(2)
        assert gbn.route(
            ["a", "b", "c", "d"], lambda s, b, lines: lines
        ) == gbn_route(["a", "b", "c", "d"], 2, lambda s, b, lines: lines)
