"""Tests for the baseline / omega / butterfly topology constructors."""

import itertools

import pytest

from repro.permutations import Permutation, random_permutation
from repro.topology import (
    baseline_network,
    baseline_routing_bit_schedule,
    butterfly_network,
    butterfly_routing_bit_schedule,
    omega_network,
    omega_routing_bit_schedule,
)


TOPOLOGIES = [
    (baseline_network, baseline_routing_bit_schedule),
    (omega_network, omega_routing_bit_schedule),
    (butterfly_network, butterfly_routing_bit_schedule),
]


class TestStructure:
    @pytest.mark.parametrize("build,schedule", TOPOLOGIES)
    def test_log_stages(self, build, schedule):
        for m in (1, 2, 3, 4):
            net = build(1 << m)
            assert net.stage_count == m
            assert net.switch_count == (1 << m) // 2 * m
            assert len(schedule(1 << m)) == m

    def test_baseline_wirings_are_unshuffles(self):
        net = baseline_network(8)
        from repro.topology import unshuffle_connection

        assert net.wirings[0] == unshuffle_connection(8, 3)
        assert net.wirings[1] == unshuffle_connection(8, 2)


class TestReachability:
    """Destination-tag routing with idle lines reaches every output
    from every input: the single-path property of log-stage networks."""

    @pytest.mark.parametrize("build,schedule", TOPOLOGIES)
    def test_single_packet_reaches_every_output(self, build, schedule):
        n = 8
        net = build(n)
        bit_schedule = schedule(n)
        for source in range(n):
            for dest in range(n):
                request = [None] * n
                request[source] = dest
                report = net.self_route(request, bit_schedule)
                assert report.outputs[dest] == dest, (source, dest)


class TestPassableCounts:
    """Each topology passes exactly 2**(total switches) permutations of
    4 lines — every switch-setting combination realizes a distinct
    permutation at this size."""

    @pytest.mark.parametrize("build,schedule", TOPOLOGIES)
    def test_n4_count(self, build, schedule):
        n = 4
        net = build(n)
        bit_schedule = schedule(n)
        passed = sum(
            net.self_route(list(p), bit_schedule).delivered
            for p in itertools.permutations(range(n))
        )
        assert passed == 16

    @pytest.mark.parametrize("build,schedule", TOPOLOGIES)
    def test_settings_give_distinct_permutations_n4(self, build, schedule):
        net = build(4)
        realized = set()
        for bits in itertools.product([0, 1], repeat=4):
            controls = [list(bits[:2]), list(bits[2:])]
            realized.add(net.realized_permutation(controls).mapping)
        assert len(realized) == 16


class TestButterflyCorrectness:
    def test_butterfly_routes_by_lsb_first(self):
        """A permutation that only permutes within bit-0 pairs passes."""
        from repro.permutations import exchange

        n = 8
        net = butterfly_network(n)
        report = net.self_route(
            exchange(3).to_list(), butterfly_routing_bit_schedule(n)
        )
        assert report.delivered

    def test_butterfly_differs_from_omega_in_passable_set(self):
        n = 8
        butterfly = butterfly_network(n)
        omega = omega_network(n)
        b_sched = butterfly_routing_bit_schedule(n)
        o_sched = omega_routing_bit_schedule(n)
        differ = 0
        for seed in range(200):
            pi = random_permutation(n, rng=seed).to_list()
            if (
                butterfly.self_route(pi, b_sched).delivered
                != omega.self_route(pi, o_sched).delivered
            ):
                differ += 1
        assert differ > 0
