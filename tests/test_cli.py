"""CLI tests (direct invocation of repro.cli.main)."""

import pytest

from repro.cli import build_parser, main


class TestRoute:
    def test_route_bnb(self, capsys):
        assert main(["route", "16", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "delivered: True" in out

    def test_route_other_networks(self, capsys):
        for network in ("batcher", "benes", "koppelman", "crossbar"):
            assert main(["route", "8", "--network", network]) == 0

    def test_route_bad_size(self, capsys):
        assert main(["route", "12"]) == 2
        assert "error:" in capsys.readouterr().err


class TestVerify:
    def test_verify_exhaustive(self, capsys):
        assert main(["verify", "4", "--mode", "exhaustive"]) == 0
        assert "24/24" in capsys.readouterr().out

    def test_verify_sampled(self, capsys):
        assert main(["verify", "16", "--samples", "10"]) == 0
        assert "10/10" in capsys.readouterr().out


class TestTables:
    def test_tables(self, capsys):
        assert main(["tables", "256", "--data-width", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "This paper" in out


class TestFigures:
    def test_figures(self, capsys):
        assert main(["figures", "--m", "3"]) == 0
        out = capsys.readouterr().out
        assert "generalized baseline network" in out
        assert "function node" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "8", "--network", "warp"])
