"""CLI tests (direct invocation of repro.cli.main)."""

import json

import pytest

from repro.cli import build_parser, main


class TestRoute:
    def test_route_bnb(self, capsys):
        assert main(["route", "16", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "delivered: True" in out

    def test_route_other_networks(self, capsys):
        for network in ("batcher", "bitonic", "benes", "koppelman", "crossbar"):
            assert main(["route", "8", "--network", network]) == 0

    def test_route_bad_size(self, capsys):
        assert main(["route", "12"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_route_json(self, capsys):
        assert main(["route", "16", "--seed", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["network"] == "bnb"
        assert payload["engine"] == "object"
        assert payload["n"] == 16
        assert payload["delivered"] is True
        assert sorted(payload["request"]) == list(range(16))
        assert payload["arrived"] == list(range(16))

    def test_route_fast_prose(self, capsys):
        assert main(["route", "16", "--seed", "3", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "bnb [fast]" in out
        assert "delivered: True" in out

    def test_route_fast_json_matches_object_path(self, capsys):
        assert main(["route", "16", "--seed", "3", "--fast", "--json"]) == 0
        fast = json.loads(capsys.readouterr().out)
        assert main(["route", "16", "--seed", "3", "--json"]) == 0
        slow = json.loads(capsys.readouterr().out)
        assert fast["engine"] == "fast"
        # Same seed, same request, same verified outcome either engine.
        assert fast["request"] == slow["request"]
        assert fast["arrived"] == slow["arrived"]
        assert fast["delivered"] is True

    def test_route_fast_non_bnb_exits_2(self, capsys):
        assert main(["route", "8", "--network", "batcher", "--fast"]) == 2
        assert "cannot route" in capsys.readouterr().err

    def test_route_fast_bad_size_exits_2(self, capsys):
        assert main(["route", "12", "--fast"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRouteBackend:
    def test_pinned_backend_json(self, capsys):
        assert main(
            ["route", "8", "--seed", "3", "--backend", "msorter", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "backend"
        assert payload["backend"] == "msorter"
        assert payload["delivered"] is True
        assert payload["arrived"] == list(range(8))

    def test_every_registered_backend_routes(self, capsys):
        from repro.backends import backend_names

        for name in backend_names():
            assert main(["route", "8", "--backend", name]) == 0
            out = capsys.readouterr().out
            assert f"backend {name}" in out
            assert "delivered: True" in out

    def test_auto_resolves_to_a_registered_winner(self, capsys):
        from repro.backends import backend_names

        assert main(["route", "8", "--backend", "auto", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] in backend_names()
        assert payload["delivered"] is True

    def test_auto_prose_names_the_winner(self, capsys):
        assert main(["route", "8", "--backend", "auto"]) == 0
        assert "(arena winner)" in capsys.readouterr().out

    def test_backend_and_fast_conflict_exits_2(self, capsys):
        assert main(["route", "8", "--backend", "bnb", "--fast"]) == 2
        assert "--backend" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "8", "--backend", "nope"])

    def test_backend_choices_cover_registry_plus_auto(self):
        from repro.backends import backend_names

        parser = build_parser()
        args = parser.parse_args(["route", "8", "--backend", "krbenes"])
        assert args.backend == "krbenes"
        for name in backend_names() + ["auto"]:
            parser.parse_args(["route", "8", "--backend", name])

    def test_stats_engine_accepts_backend_names(self):
        parser = build_parser()
        args = parser.parse_args(["stats", "8", "--engine", "msorter"])
        assert args.engine == "msorter"
        parser.parse_args(["stats", "8", "--engine", "auto"])

    def test_serve_engine_accepts_auto_and_backend_names(self):
        from repro.backends import backend_names

        parser = build_parser()
        for engine in ("object", "vector", "batch", "auto") + tuple(
            backend_names()
        ):
            args = parser.parse_args(["serve", "8", "--engine", engine])
            assert args.engine == engine
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "8", "--engine", "warp"])


class TestVerify:
    def test_verify_exhaustive(self, capsys):
        assert main(["verify", "4", "--mode", "exhaustive"]) == 0
        assert "24/24" in capsys.readouterr().out

    def test_verify_sampled(self, capsys):
        assert main(["verify", "16", "--samples", "10"]) == 0
        assert "10/10" in capsys.readouterr().out

    def test_verify_json(self, capsys):
        assert main(
            ["verify", "4", "--mode", "exhaustive", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["router"] == "bnb"
        assert payload["attempted"] == 24
        assert payload["delivered"] == 24
        assert payload["all_delivered"] is True
        assert payload["failures"] == []


class TestTables:
    def test_tables(self, capsys):
        assert main(["tables", "256", "--data-width", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "This paper" in out


class TestFigures:
    def test_figures(self, capsys):
        assert main(["figures", "--m", "3"]) == 0
        out = capsys.readouterr().out
        assert "generalized baseline network" in out
        assert "function node" in out


class TestFaults:
    def test_healthy_service(self, capsys):
        assert main(["faults", "8", "--batches", "2"]) == 0
        out = capsys.readouterr().out
        assert "batch 0  : mode=clean" in out
        assert "state     : healthy" in out

    def test_injected_fault_fails_over(self, capsys):
        assert main(
            ["faults", "8", "--stuck", "0,0,1,1,1", "--stuck-value", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "injected : stuck-at-0" in out
        assert "state     : quarantined" in out
        assert "confirmed : (0,0,1,1,1)/stuck-0" in out
        assert "quarantine" in out  # event log

    def test_bad_coordinate_format_exits_2(self, capsys):
        assert main(["faults", "8", "--stuck", "1,2,3"]) == 2
        assert "five comma-separated" in capsys.readouterr().err

    def test_non_integer_coordinate_exits_2(self, capsys):
        assert main(["faults", "8", "--stuck", "a,b,c,d,e"]) == 2
        assert "integers" in capsys.readouterr().err

    def test_unknown_coordinate_exits_2(self, capsys):
        assert main(["faults", "8", "--stuck", "9,9,9,9,9"]) == 2
        assert "not a switch" in capsys.readouterr().err

    def test_bad_size_exits_2(self, capsys):
        assert main(["faults", "12"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report(self, capsys):
        assert main(["faults", "8", "--report"]) == 0
        out = capsys.readouterr().out
        assert "Exhaustive single stuck-at sweep" in out
        assert "48/48" in out


class TestServe:
    def test_demo_prose(self, capsys):
        assert main(["serve", "8", "--demo", "40", "--planes", "2"]) == 0
        out = capsys.readouterr().out
        assert "gateway  : N=8" in out
        assert "40 offered" in out

    def test_demo_json(self, capsys):
        assert main(
            ["serve", "8", "--demo", "60", "--capacity", "4", "--json"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["n"] == 8
        assert stats["delivered_words"] == 60
        assert stats["queues"]["max_depth"] <= 4
        assert stats["latency_cycles"]["p50"] >= 1

    def test_demo_resilient(self, capsys):
        assert main(["serve", "8", "--demo", "24", "--resilient", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["delivered_words"] == 24
        assert stats["planes"][0]["kind"] == "ResilientPlane"

    def test_demo_vector_engine(self, capsys):
        assert main(
            ["serve", "8", "--demo", "40", "--engine", "vector", "--json"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["delivered_words"] == 40
        assert stats["planes"][0]["kind"] == "VectorPlane"
        assert stats["planes"][0]["engine"] == "vector"

    def test_demo_resilient_vector_composes(self, capsys):
        assert main(
            [
                "serve", "8", "--demo", "24",
                "--resilient", "--engine", "vector", "--json",
            ]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["delivered_words"] == 24
        assert stats["planes"][0]["kind"] == "ResilientPlane"
        assert stats["planes"][0]["engine"] == "vector"

    def test_demo_pool_workers(self, capsys):
        assert main(
            ["serve", "8", "--demo", "24", "--pool-workers", "2", "--json"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["delivered_words"] == 24
        assert len(stats["planes"]) == 2
        assert all(
            plane["kind"] == "ProcessPlane" for plane in stats["planes"]
        )

    def test_serve_bad_size_exits_2(self, capsys):
        assert main(["serve", "12"]) == 2
        assert "error:" in capsys.readouterr().err


class TestKeyboardInterrupt:
    def test_sigint_exits_130(self, capsys, monkeypatch):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._HANDLERS, "report", interrupted)
        assert main(["report"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "Traceback" not in err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "8", "--network", "warp"])
