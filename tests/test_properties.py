"""Unit tests for permutation predicates and routability classifiers."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.permutations import (
    Permutation,
    bit_reversal,
    bpc,
    cyclic_shift,
    identity,
    perfect_shuffle,
    random_bpc,
    random_permutation,
    reversal,
)
from repro.permutations.properties import (
    baseline_passable,
    cycle_structure,
    fixed_points,
    infer_bpc,
    is_bpc,
    is_derangement,
    is_identity,
    is_involution,
    omega_passable,
)


class TestBasicPredicates:
    def test_is_identity(self):
        assert is_identity(identity(3))
        assert not is_identity(reversal(3))

    def test_is_involution(self):
        assert is_involution(reversal(3))
        assert not is_involution(Permutation([1, 2, 0]))

    def test_is_derangement(self):
        assert is_derangement(reversal(2))
        assert not is_derangement(identity(2))

    def test_fixed_points(self):
        assert fixed_points(Permutation([0, 2, 1, 3])) == [0, 3]

    def test_cycle_structure(self):
        assert cycle_structure(Permutation([1, 0, 3, 2])) == {2: 2}
        assert cycle_structure(identity(3)) == {1: 8}


class TestBPCInference:
    def test_recovers_parameters(self):
        sigma = [2, 0, 1]
        pi = bpc(3, sigma, 0b011)
        recovered = infer_bpc(pi)
        assert recovered is not None
        assert recovered == (sigma, 0b011)

    def test_rejects_non_bpc(self):
        # A 3-cycle on two points of an otherwise-identity permutation
        # is not linear.
        pi = Permutation([0, 2, 1, 3, 4, 5, 6, 7])
        assert infer_bpc(pi) is None

    def test_rejects_non_power_of_two(self):
        assert infer_bpc(Permutation([1, 2, 0])) is None

    @given(st.integers(0, 100))
    def test_random_bpc_always_inferred(self, seed):
        pi = random_bpc(16, rng=seed)
        assert is_bpc(pi)

    def test_random_permutations_rarely_bpc(self):
        # There are m! * 2^m = 384 BPC permutations of 16 points out of
        # 16! ~ 2e13; a random draw is essentially never BPC.
        hits = sum(is_bpc(random_permutation(16, rng=s)) for s in range(100))
        assert hits == 0


class TestPassability:
    def test_identity_passes_omega_but_not_baseline(self):
        assert omega_passable(identity(3))
        # In the baseline numbering, inputs 0 and 1 share the first
        # switch but both outputs 0 and 1 live in the upper recursive
        # half — the switch has only one link up, so even the identity
        # blocks.  (The plain baseline network really is that weak.)
        assert not baseline_passable(identity(3))

    def test_bit_reversal_blocks_omega_passes_baseline(self):
        # The classic omega-blocking pattern — which the baseline
        # numbering happens to route (its stages unscramble exactly the
        # reversed bit order).
        assert not omega_passable(bit_reversal(3))
        assert baseline_passable(bit_reversal(3))

    def test_uniform_shift_passes_omega(self):
        # Nearest-neighbour shift: one of Lawrie's access patterns.
        assert omega_passable(cyclic_shift(3, 1))

    def test_perfect_shuffle_blocks_omega(self):
        # Perhaps surprising: the shuffle permutation itself is not
        # omega-passable at N=8 (two packets collide in stage 1).
        assert not omega_passable(perfect_shuffle(3))

    def test_exhaustive_counts_n4(self):
        """Exactly N^(N/2) = 16 of the 24 permutations of 4 points pass
        a 2-stage 4-line network (4 switches, 2 settings each)."""
        omega_count = sum(
            omega_passable(Permutation(p))
            for p in itertools.permutations(range(4))
        )
        baseline_count = sum(
            baseline_passable(Permutation(p))
            for p in itertools.permutations(range(4))
        )
        assert omega_count == 16
        assert baseline_count == 16

    def test_passable_sets_differ(self):
        """Omega and baseline are topologically equivalent but accept
        different permutation sets."""
        omega_set = {
            p
            for p in itertools.permutations(range(8))
            if omega_passable(Permutation(p))
        }
        baseline_set = set()
        count = 0
        for p in itertools.permutations(range(8)):
            if baseline_passable(Permutation(p)):
                baseline_set.add(p)
            count += 1
            if count >= 5000:  # sample prefix; enough to find a difference
                break
        assert baseline_set - omega_set or omega_set - baseline_set

    def test_fraction_collapses(self):
        """The fraction of passable permutations collapses with N —
        the quantitative motivation for the BNB network."""
        passed8 = sum(
            baseline_passable(random_permutation(8, rng=s)) for s in range(300)
        )
        passed32 = sum(
            baseline_passable(random_permutation(32, rng=s)) for s in range(300)
        )
        assert passed8 > passed32
        assert passed32 <= 2
