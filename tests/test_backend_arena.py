"""The arena: calibration, caching, winner selection, oracle gating.

The property that matters most: **a fast wrong answer must never
win** — a backend that disagrees with the crossbar oracle raises
``BackendDisagreementError`` before any timer starts, so the cost
table only ever contains verified engines.
"""

import numpy as np
import pytest

from repro.backends import (
    BackendDisagreementError,
    BackendSpec,
    WORKLOADS,
    backend_names,
    calibrate,
    clear_arena_cache,
    compiled_backend,
    select_backend,
    verify_backend,
)
from repro.backends import arena as arena_module
from repro.backends.base import _REGISTRY
from repro.exceptions import ReproError

#: Small, fast calibration settings for the tests.
QUICK = dict(frames=4, batch_window=4, repeats=1, verify_samples=2)


@pytest.fixture(autouse=True)
def fresh_arena():
    clear_arena_cache()
    yield
    clear_arena_cache()


class TestCalibrate:
    def test_table_covers_every_backend_and_workload(self):
        table = calibrate(3, **QUICK)
        assert set(table) == set(WORKLOADS)
        for workload in WORKLOADS:
            assert sorted(table[workload]) == backend_names()
            for cost in table[workload].values():
                assert cost > 0.0

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            calibrate(3, workloads=("latency",), **QUICK)

    def test_results_cached_no_retiming(self, monkeypatch):
        first = calibrate(3, **QUICK)

        def _boom(*_args, **_kwargs):
            raise AssertionError("re-timed a cached cell")

        monkeypatch.setattr(arena_module, "_time_single", _boom)
        monkeypatch.setattr(arena_module, "_time_batch", _boom)
        again = calibrate(3, **QUICK)
        assert again == first

    def test_use_cache_false_retimes(self):
        first = calibrate(3, workloads=("single",), **QUICK)
        again = calibrate(
            3, workloads=("single",), use_cache=False, **QUICK
        )
        # Fresh timings land in the cache (values may legitimately
        # differ run to run; the shape must not).
        assert set(again["single"]) == set(first["single"])

    def test_backend_subset(self):
        table = calibrate(3, backends=["bnb", "msorter"], **QUICK)
        assert sorted(table["single"]) == ["bnb", "msorter"]


class TestSelectBackend:
    def test_winner_is_the_cheapest_cell(self):
        decision = select_backend(3, workload="batch", **QUICK)
        assert decision.m == 3
        assert decision.workload == "batch"
        assert decision.backend == min(
            decision.table, key=decision.table.__getitem__
        )
        assert decision.spread >= 1.0

    def test_describe_is_json_shaped(self):
        decision = select_backend(3, workload="single", **QUICK)
        info = decision.describe()
        assert set(info) == {
            "m", "workload", "backend", "seconds_per_frame", "spread",
        }
        assert info["backend"] in info["seconds_per_frame"]
        assert list(info["seconds_per_frame"]) == sorted(
            info["seconds_per_frame"]
        )

    def test_vector_beats_object_on_batch(self):
        # Not a full ranking pin (machine-dependent), but the compiled
        # batch kernel beating the per-word object loop is structural.
        decision = select_backend(4, workload="batch", **QUICK)
        assert decision.table["bnb"] < decision.table["bnb-object"]
        assert decision.backend != "bnb-object"


class _LyingBackend:
    """Routes everything to line 0 — fast and wrong."""

    name = "lying-test"

    def __init__(self, m):
        self.m = m
        self.n = 1 << m

    def route_frame(self, addresses):
        return np.zeros(self.n, dtype=np.int64)

    def route_frame_batch(self, addresses):
        return np.zeros(addresses.shape, dtype=np.int64)


@pytest.fixture
def lying_backend():
    spec = BackendSpec(
        name="lying-test",
        summary="deliberately wrong (test only)",
        factory=_LyingBackend,
    )
    _REGISTRY[spec.name] = spec
    try:
        yield spec.name
    finally:
        del _REGISTRY[spec.name]
        compiled_backend.cache_clear()


class TestOracleGate:
    def test_verify_backend_counts_frames(self):
        checked = verify_backend("msorter", 3, samples=4)
        assert checked == 6  # identity + reversal + 4 random

    def test_disagreeing_backend_raises(self, lying_backend):
        with pytest.raises(BackendDisagreementError, match="disagrees"):
            verify_backend(lying_backend, 2, samples=2)

    def test_calibrate_refuses_to_time_a_liar(self, lying_backend):
        with pytest.raises(BackendDisagreementError):
            calibrate(2, backends=[lying_backend, "bnb"], **QUICK)
        # Nothing was timed for the lying cell.
        assert all(
            key[2] != lying_backend for key in arena_module._CACHE
        )

    def test_disagreement_is_a_repro_error(self):
        assert issubclass(BackendDisagreementError, ReproError)
