"""Closed forms (Eqs. 6-12, Tables 1-2) vs recurrences and structures."""

import pytest

from repro.analysis import complexity as cx
from repro.analysis import recurrences as rec


class TestBuildingBlocks:
    def test_nested_network_switch_slices(self):
        # Eq. 2-3 at P=8, w=2: (8/2)*3 switches per slice, 5 slices.
        assert cx.nested_network_switch_slices(8, 2) == 4 * 3 * 5

    def test_arbiter_nodes_in_bsn_small(self):
        # P=2: A(1) only -> 0; P=4: one A(2) -> 3; P=8: A(3)+2 A(2) -> 13.
        assert cx.arbiter_nodes_in_bsn(2) == 0
        assert cx.arbiter_nodes_in_bsn(4) == 3
        assert cx.arbiter_nodes_in_bsn(8) == 13

    def test_arbiter_recurrence_matches(self):
        for k in range(1, 12):
            assert cx.arbiter_nodes_in_bsn(1 << k) == rec.arbiter_node_recurrence(
                1 << k
            )


class TestEq6:
    @pytest.mark.parametrize("w", [0, 1, 4, 16, 32])
    def test_switch_slices_match_recurrence(self, w):
        for m in range(1, 14):
            n = 1 << m
            assert cx.bnb_switch_slices(n, w) == rec.bnb_switch_recurrence(n, w)

    def test_function_nodes_match_recurrence(self):
        for m in range(1, 14):
            n = 1 << m
            assert cx.bnb_function_nodes(n) == rec.bnb_function_node_recurrence(n)

    def test_specific_values(self):
        # N=8, w=0: 8*27/6 + 8*9/4 + 8*3/12 = 36 + 18 + 2 = 56.
        assert cx.bnb_switch_slices(8) == 56
        # N=8: 8*9/2 - 24 + 8 - 1 = 19.
        assert cx.bnb_function_nodes(8) == 19


class TestEqs789:
    def test_delay_components_match_sums(self):
        for m in range(1, 14):
            n = 1 << m
            assert cx.bnb_delay(n, d_sw=1, d_fn=0) == rec.bnb_sw_delay_sum(n)
            assert cx.bnb_delay(n, d_sw=0, d_fn=1) == rec.bnb_fn_delay_sum(n)

    def test_table2_row_is_eq9_at_unit_delays(self):
        for m in range(1, 14):
            n = 1 << m
            assert cx.bnb_delay_table2(n) == pytest.approx(cx.bnb_delay(n))

    def test_delay_scaling_linear_in_units(self):
        n = 256
        assert cx.bnb_delay(n, d_sw=2, d_fn=3) == pytest.approx(
            2 * cx.bnb_delay(n, 1, 0) + 3 * cx.bnb_delay(n, 0, 1)
        )


class TestEqs10to12:
    def test_comparators_match_recurrence(self):
        for m in range(1, 14):
            n = 1 << m
            assert cx.batcher_comparators(n) == rec.batcher_comparator_recurrence(n)

    def test_eq11_is_product_form(self):
        for m in range(1, 12):
            n = 1 << m
            for w in (0, 8):
                assert cx.batcher_switch_slices(n, w) == cx.batcher_comparators(
                    n
                ) * (m + w)
            assert cx.batcher_function_slices(n) == cx.batcher_comparators(n) * m

    def test_table2_batcher_row_drops_switch_term(self):
        """Documented printing quirk: Table 2's Batcher row is only the
        D_FN polynomial of Eq. 12."""
        n = 256
        assert cx.batcher_delay_table2(n) == pytest.approx(
            cx.batcher_delay(n, d_sw=0, d_fn=1)
        )
        assert cx.batcher_delay_table2(n) < cx.batcher_delay(n)


class TestKoppelmanRow:
    def test_values_at_n8(self):
        assert cx.koppelman_switch_slices(8) == 8 * 27 // 4
        assert cx.koppelman_function_slices(8) == 8 * 9 // 2
        assert cx.koppelman_adder_slices(8) == 72
        assert cx.koppelman_delay_table2(8) == pytest.approx(
            2 * 27 / 3 - 9 + 1 + 1
        )


class TestHeadlineRatios:
    def test_hardware_ratio_tends_to_one_third(self):
        """Convergence is O(1/log N), so realistic sizes sit well above
        the 1/3 limit (0.50 at N=2^10); a huge symbolic size pins the
        asymptote."""
        ratios = [cx.hardware_leading_ratio(1 << m) for m in (10, 16, 22, 26)]
        assert ratios == sorted(ratios, reverse=True)  # monotone down
        assert abs(cx.hardware_leading_ratio(1 << 200) - 1 / 3) < 0.01

    def test_delay_ratio_tends_to_two_thirds(self):
        ratios = [cx.delay_leading_ratio(1 << m) for m in (10, 16, 22, 26)]
        assert ratios == sorted(ratios, reverse=True)
        assert abs(cx.delay_leading_ratio(1 << 200) - 2 / 3) < 0.01

    def test_power_of_two_required_everywhere(self):
        for fn in (
            cx.bnb_switch_slices,
            cx.bnb_function_nodes,
            cx.batcher_comparators,
            cx.koppelman_switch_slices,
        ):
            with pytest.raises(Exception):
                fn(12)
