"""Adaptive fault model: masking, cascades and recovery."""

import pytest

from repro.core import BNBNetwork, Word
from repro.faults import SwitchCoordinate, misrouted_outputs
from repro.faults.adaptive import (
    detect_and_reroute,
    recovery_experiment,
    route_with_stuck_switch,
)
from repro.permutations import random_permutation


def words_for(m, seed):
    pi = random_permutation(1 << m, rng=seed)
    return pi, [Word(address=pi(j), payload=j) for j in range(1 << m)]


class TestAdaptiveRouting:
    def test_no_fault_equals_reference(self):
        """With an out-of-range switch index the override never fires,
        so the adaptive router must agree with BNBNetwork exactly."""
        m = 3
        pi, words = words_for(m, 1)
        phantom = SwitchCoordinate(0, 0, 0, 0, 99)
        outputs = route_with_stuck_switch(m, words, phantom, 0)
        reference, _ = BNBNetwork(m).route(words)
        assert [w.address for w in outputs] == [w.address for w in reference]

    def test_early_faults_often_masked(self):
        """The architecture self-heals early faults: a stuck switch in
        the FIRST nested stage is corrected by later splitters of the
        same bit-sorter network re-deciding on live data.  Measure how
        often stage-(0,0,0) faults are masked."""
        m = 4
        masked = 0
        trials = 30
        coordinate = SwitchCoordinate(0, 0, 0, 0, 0)
        for seed in range(trials):
            _pi, words = words_for(m, seed)
            for value in (0, 1):
                outputs = route_with_stuck_switch(m, words, coordinate, value)
                if not misrouted_outputs(outputs):
                    masked += 1
        assert masked > trials  # more than half of (trial, value) pairs

    def test_final_stage_faults_always_bite_when_activated(self):
        """A stuck sp(1) in the LAST main stage has nobody downstream
        to fix it: whenever the stuck value disagrees with the needed
        setting, exactly two outputs misroute."""
        m = 3
        coordinate = SwitchCoordinate(
            main_stage=2, nested=0, nested_stage=0, box=0, switch=0
        )
        activated_and_bad = 0
        activated = 0
        for seed in range(30):
            _pi, words = words_for(m, seed)
            healthy = route_with_stuck_switch(
                m, words, SwitchCoordinate(0, 0, 0, 0, 99), 0
            )
            for value in (0, 1):
                outputs = route_with_stuck_switch(m, words, coordinate, value)
                bad = misrouted_outputs(outputs)
                if bad:
                    activated_and_bad += 1
                    assert len(bad) == 2
                    activated += 1
        assert activated_and_bad > 0

    def test_cascades_differ_from_frozen_model(self):
        """The frozen-replay model always displaces an even number of
        words (one swapped pair follows two fixed paths).  Adaptively,
        a displaced bit can unbalance a downstream block and misroute an
        ODD number of words — a cascade the replay model cannot show.
        Pin both facts: odd counts occur, and the blast stays bounded."""
        m = 3
        counts = set()
        for seed in range(10):
            _pi, words = words_for(m, seed)
            for stage, nested, nstage in ((0, 0, 1), (1, 0, 0), (1, 1, 1)):
                coordinate = SwitchCoordinate(stage, nested, nstage, 0, 0)
                outputs = route_with_stuck_switch(m, words, coordinate, 1)
                bad = misrouted_outputs(outputs)
                counts.add(len(bad))
                # Cascades can spread widely but never corrupt every
                # output (at minimum the pair that lands correctly by
                # luck of the stuck value).
                assert len(bad) < (1 << m)
        assert any(count % 2 == 1 for count in counts), counts
        assert max(counts) > 2  # cascades exceed the frozen model's pair

    def test_value_validation(self):
        m = 2
        _pi, words = words_for(m, 0)
        with pytest.raises(ValueError):
            route_with_stuck_switch(m, words, SwitchCoordinate(0, 0, 0, 0, 0), 2)
        with pytest.raises(ValueError):
            route_with_stuck_switch(m, words[:2], SwitchCoordinate(0, 0, 0, 0, 0), 1)


class TestRecovery:
    def test_benign_fault_one_pass(self):
        m = 3
        pi = random_permutation(8, rng=3)
        # A phantom fault: recovery must complete in a single pass.
        outcome = detect_and_reroute(
            m, pi.to_list(), SwitchCoordinate(0, 0, 0, 0, 99), 0
        )
        assert outcome.recovered
        assert outcome.passes == 1
        assert outcome.misrouted_per_pass == [0]

    def test_delivered_words_are_correct(self):
        m = 3
        pi = random_permutation(8, rng=9)
        coordinate = SwitchCoordinate(2, 1, 0, 0, 0)
        outcome = detect_and_reroute(m, pi.to_list(), coordinate, 1)
        if outcome.recovered:
            for line, word in enumerate(outcome.outputs):
                assert word is not None
                assert word.address == line

    def test_experiment_statistics(self):
        stats = recovery_experiment(3, trials=30, seed=5)
        assert 0.7 < stats["recovery_rate"] <= 1.0
        assert stats["mean_passes"] < 3.0

    def test_persistent_fault_can_exhaust_passes(self):
        """Some (fault, workload) pairs never recover: the repair
        traffic keeps exercising the stuck switch.  The loop must give
        up cleanly rather than spin."""
        m = 3
        found_failure = False
        for seed in range(60):
            pi = random_permutation(8, rng=100 + seed)
            for nested in range(4):
                coordinate = SwitchCoordinate(2, nested, 0, 0, 0)
                for value in (0, 1):
                    outcome = detect_and_reroute(
                        m, pi.to_list(), coordinate, value, max_passes=3
                    )
                    if not outcome.recovered:
                        found_failure = True
                        assert outcome.passes == 3
                        assert len(outcome.misrouted_per_pass) == 3
                        return
        assert found_failure
