"""Tests for the three-stage Clos network and Slepian-Duguid routing."""

import itertools

import pytest

from repro.baselines import ClosNetwork
from repro.core import Word
from repro.exceptions import ConfigurationError, NotAPermutationError
from repro.permutations import Permutation, random_permutation


class TestConstruction:
    def test_parameters(self):
        clos = ClosNetwork(4, 4, 8)
        assert clos.terminals == 32

    def test_rearrangeability_condition(self):
        with pytest.raises(ConfigurationError, match="m >= n"):
            ClosNetwork(4, 3, 2)

    def test_positive_parameters(self):
        with pytest.raises(ConfigurationError):
            ClosNetwork(0, 1, 1)

    def test_crosspoints_beat_crossbar(self):
        """The classic saving: C(n, n, r) uses fewer crosspoints than
        the N x N crossbar once N is large enough."""
        clos = ClosNetwork(4, 4, 16)  # N = 64
        assert clos.crosspoint_count < 64 * 64

    def test_crosspoint_formula(self):
        clos = ClosNetwork(2, 3, 4)
        assert clos.crosspoint_count == 2 * 4 * 2 * 3 + 3 * 16

    def test_ingress_of(self):
        clos = ClosNetwork(4, 4, 2)
        assert clos.ingress_of(0) == 0
        assert clos.ingress_of(7) == 1
        with pytest.raises(ValueError):
            clos.ingress_of(8)


class TestRouting:
    def test_exhaustive_smallest(self):
        clos = ClosNetwork(2, 2, 2)
        for p in itertools.permutations(range(4)):
            outputs = clos.route(list(p))
            assert [w.address for w in outputs] == [0, 1, 2, 3], p

    @pytest.mark.parametrize("n,m,r", [(2, 2, 4), (4, 4, 4), (4, 5, 8), (2, 3, 8)])
    def test_sampled(self, n, m, r):
        clos = ClosNetwork(n, m, r)
        for seed in range(15):
            pi = random_permutation(clos.terminals, rng=seed)
            outputs = clos.route(pi.to_list())
            assert [w.address for w in outputs] == list(range(clos.terminals))

    def test_payloads(self):
        clos = ClosNetwork(2, 2, 2)
        pi = random_permutation(4, rng=3)
        words = [Word(address=pi(j), payload=j) for j in range(4)]
        outputs = clos.route(words)
        inverse = pi.inverse()
        for line, word in enumerate(outputs):
            assert word.payload == inverse(line)

    def test_rejects_non_permutation(self):
        with pytest.raises(NotAPermutationError):
            ClosNetwork(2, 2, 2).route([0, 0, 1, 2])


class TestMiddleAssignments:
    def test_no_double_booking(self):
        """Within each middle switch, every ingress and egress carries
        at most one word — the Clos conflict-freedom invariant."""
        clos = ClosNetwork(4, 4, 4)
        pi = random_permutation(16, rng=7)
        for chosen in clos.middle_assignments(pi):
            ingresses = [clos.ingress_of(s) for s in chosen]
            egresses = [clos.ingress_of(d) for d in chosen.values()]
            assert len(set(ingresses)) == len(ingresses)
            assert len(set(egresses)) == len(egresses)

    def test_every_word_assigned_once(self):
        clos = ClosNetwork(4, 5, 4)
        pi = random_permutation(16, rng=9)
        assigned = [s for chosen in clos.middle_assignments(pi) for s in chosen]
        assert sorted(assigned) == list(range(16))

    def test_n_rounds_suffice_for_m_equals_n(self):
        """With m == n, all n rounds are (generically) non-empty and the
        decomposition is exactly Slepian-Duguid's n perfect matchings."""
        clos = ClosNetwork(4, 4, 4)
        pi = random_permutation(16, rng=11)
        assignments = clos.middle_assignments(pi)
        assert len(assignments) == 4
        assert all(len(chosen) == 4 for chosen in assignments)

    def test_routes_for_covers_all_sources(self):
        clos = ClosNetwork(2, 2, 4)
        pi = random_permutation(8, rng=2)
        routes = clos.routes_for(pi)
        assert sorted(route.source for route in routes) == list(range(8))
        for route in routes:
            assert route.destination == pi(route.source)
            assert 0 <= route.middle_switch < 2

    def test_size_validation(self):
        clos = ClosNetwork(2, 2, 2)
        with pytest.raises(ValueError):
            clos.middle_assignments(Permutation([0, 1]))
