"""Property-based differential tests: every ROUTERS entry vs Crossbar.

``repro.analysis.ROUTERS`` is the registry of router factories the
verification harness and the CLI drive; this suite fuzzes **every**
entry (now including ``bitonic``) against the crossbar oracle with
hypothesis-generated permutations, and sweeps n=4 exhaustively.  The
restricted Nassimi–Sahni router is not in ``ROUTERS`` (it rejects
non-member permutations by design), so the property holds registry-wide
without exclusions.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.verification import ROUTERS
from repro.baselines.crossbar import Crossbar

ALL_ROUTERS = sorted(ROUTERS)


def test_registry_contains_every_full_access_baseline():
    assert ALL_ROUTERS == [
        "batcher", "benes", "bitonic", "bnb", "clos", "crossbar",
        "koppelman",
    ]


@st.composite
def sized_permutations(draw):
    m = draw(st.integers(1, 3))
    mapping = draw(st.permutations(list(range(1 << m))))
    return m, mapping


@settings(max_examples=60, deadline=None)
@given(sized_permutations())
def test_every_router_matches_the_crossbar(case):
    m, mapping = case
    n = 1 << m
    oracle = [w.address for w in Crossbar(n).route(list(mapping))]
    assert oracle == list(range(n))  # the oracle itself delivers sorted
    for name in ALL_ROUTERS:
        outputs = ROUTERS[name](m)(list(mapping))
        assert [w.address for w in outputs] == oracle, name


@pytest.mark.parametrize("name", ALL_ROUTERS)
def test_exhaustive_n4(name):
    route = ROUTERS[name](2)
    for mapping in itertools.permutations(range(4)):
        outputs = route(list(mapping))
        assert [w.address for w in outputs] == [0, 1, 2, 3], (name, mapping)
