"""The fault-tolerant vector dataplane: masks, vector BIST, failover.

Covers the fault-as-data model end to end: :class:`FaultMask`
construction and validation, dead-link sentinel propagation through
the compiled kernels, the batched (pipelined) BIST pass and its
vectorized syndrome decoding, and :class:`ResilientVectorFabric` —
the compiled twin of :class:`ResilientFabric` — including its
compiled Benes failover plan.
"""

import numpy as np
import pytest

from repro.core import Word
from repro.core.pipeline import PipelinedBNBFabric, stuck_control_override
from repro.core.pipeline_fast import VectorPipelinedFabric
from repro.core.plan import DEAD_ADDRESS, FaultMask, build_fault_mask
from repro.exceptions import FaultError, FaultServiceError
from repro.faults import (
    SwitchCoordinate,
    fault_mask_for,
    random_fault_set,
    shared_bist_schedule,
    stuck_override_set,
)
from repro.faults.localization import (
    ProbeObservation,
    decode_syndromes,
    observations_from_arrays,
)
from repro.service import (
    CompiledBenesFailover,
    HealthState,
    ResilientFabric,
    ResilientVectorFabric,
)


def identity_words(n):
    return [Word(address=line, payload=line) for line in range(n)]


def reversal_words(n):
    return [Word(address=n - 1 - line, payload=line) for line in range(n)]


class TestFaultMask:
    def test_build_and_describe(self):
        mask = build_fault_mask(3, stuck=[((2, 0, 0, 0, 0), 1)])
        assert isinstance(mask, FaultMask)
        assert mask.m == 3
        described = mask.describe()
        assert described["stuck"] == [
            {"coordinate": [2, 0, 0, 0, 0], "value": 1}
        ]
        assert described["dead_links"] == []
        # Exactly one override plane, addressed by (main stage, inner).
        assert set(mask.overrides) == {(2, 0)}
        forced, values = mask.overrides[(2, 0)]
        assert int(forced.sum()) == 1
        assert values[forced] == [1]

    def test_override_arrays_are_frozen(self):
        mask = build_fault_mask(2, stuck=[((1, 0, 0, 0, 0), 0)])
        forced, values = mask.overrides[(1, 0)]
        with pytest.raises(ValueError):
            forced[0, 0] = True
        with pytest.raises(ValueError):
            values[0, 0] = 1

    @pytest.mark.parametrize(
        "coordinate",
        [
            (-1, 0, 0, 0, 0),  # main stage below range
            (3, 0, 0, 0, 0),  # main stage above range for m=3
            (2, 4, 0, 0, 0),  # nested out of range at stage 2
            (2, 0, 1, 0, 0),  # nested stage out of range at stage 2
            (1, 0, 0, 2, 0),  # box out of range at inner stage 0
            (0, 0, 0, 0, 4),  # switch out of range in a width-8 box
        ],
    )
    def test_rejects_bad_coordinates(self, coordinate):
        with pytest.raises(FaultError):
            build_fault_mask(3, stuck=[(coordinate, 1)])

    def test_rejects_bad_stuck_value(self):
        with pytest.raises(FaultError):
            build_fault_mask(3, stuck=[((2, 0, 0, 0, 0), 2)])

    def test_rejects_bad_dead_link(self):
        with pytest.raises(FaultError):
            build_fault_mask(3, dead_links=[(9, 0)])
        with pytest.raises(FaultError):
            build_fault_mask(3, dead_links=[(1, 64)])

    def test_mask_m_must_match_fabric(self):
        mask = build_fault_mask(2)
        with pytest.raises(ValueError):
            VectorPipelinedFabric(3, fault_mask=mask)
        fabric = VectorPipelinedFabric(2)
        with pytest.raises(ValueError):
            fabric.set_fault_mask(build_fault_mask(3))


class TestMaskedKernels:
    def test_stuck_mask_matches_object_override(self):
        coordinate = SwitchCoordinate(2, 0, 0, 0, 0)
        for value in (0, 1):
            vec = VectorPipelinedFabric(
                3, fault_mask=fault_mask_for(3, [(coordinate, value)])
            )
            obj = PipelinedBNBFabric(
                3,
                control_override=stuck_control_override(2, 0, 0, 0, 0, value),
            )
            words = reversal_words(8)
            vec.offer_words(list(words), tag=0)
            obj.offer_words(list(words), tag=0)
            done_vec = vec.drain()
            done_obj = obj.drain()
            assert [
                [(w.address, w.payload) for w in outputs]
                for _tag, outputs in done_vec
            ] == [
                [(w.address, w.payload) for w in outputs]
                for _tag, outputs in done_obj
            ]

    def test_dead_link_misdelivers_deterministically(self):
        # The clobbered word routes by the all-ones DEAD_ADDRESS
        # sentinel from the dead stage onward, so it lands away from
        # its true line (line 0's remaining bits are all zeros — the
        # maximally distinguishable case) and the displacement is
        # visible to the output-side address check.
        mask = build_fault_mask(3, dead_links=[(1, 0)])
        fabric = VectorPipelinedFabric(3, fault_mask=mask)
        fabric.offer_words(identity_words(8), tag=0)
        ((_tag, outputs),) = fabric.drain()
        # No word is lost: the original objects come out, rearranged.
        assert sorted(word.address for word in outputs) == list(range(8))
        syndrome = [
            line
            for line, word in enumerate(outputs)
            if word.address != line
        ]
        assert syndrome  # the fault is visible
        # And deterministically so: the sentinel is data, not chance.
        again = VectorPipelinedFabric(3, fault_mask=mask)
        again.offer_words(identity_words(8), tag=0)
        ((_tag2, outputs2),) = again.drain()
        assert [w.address for w in outputs2] == [w.address for w in outputs]

    def test_mask_swap_applies_to_next_stage(self):
        fabric = VectorPipelinedFabric(3)
        fabric.offer_words(identity_words(8), tag=0)
        fabric.set_fault_mask(
            fault_mask_for(3, [(SwitchCoordinate(2, 0, 0, 0, 0), 1)])
        )
        # The in-flight identity frame is immune to a stuck-at-1 only if
        # its healthy controls already match; drain must still deliver 8
        # words (possibly displaced) and the next frame sees the mask.
        ((_tag, outputs),) = fabric.drain()
        assert len(outputs) == 8


class TestPipelinedBIST:
    @pytest.mark.parametrize("m", [2, 3])
    def test_matches_sequential_run_on_faulty_fabric(self, m):
        schedule = shared_bist_schedule(m)
        faults = random_fault_set(m, 1, seed=7)
        mask = fault_mask_for(m, faults)

        sequential = schedule.run(
            lambda words: PipelinedBNBFabric(
                m, control_override=stuck_override_set(faults)
            ).route_batch(words)
        )
        fabric = VectorPipelinedFabric(m, fault_mask=mask)
        pipelined = schedule.run_pipelined(fabric)
        assert [obs.syndrome for obs in pipelined] == [
            obs.syndrome for obs in sequential
        ]
        assert [obs.arrived for obs in pipelined] == [
            obs.arrived for obs in sequential
        ]
        # The fabric is idle again: the pass drained its own probes.
        assert fabric.in_flight == 0

    def test_on_probe_fires_once_per_probe(self):
        schedule = shared_bist_schedule(2)
        seen = []
        schedule.run_pipelined(
            VectorPipelinedFabric(2),
            on_probe=lambda probe, obs: seen.append((probe.index, obs.clean)),
        )
        assert seen == [(probe.index, True) for probe in schedule.probes]

    def test_requires_idle_fabric(self):
        fabric = VectorPipelinedFabric(2)
        fabric.offer_words(identity_words(4), tag="busy")
        with pytest.raises(FaultError):
            shared_bist_schedule(2).run_pipelined(fabric)


class TestVectorizedDecoding:
    def test_decode_syndromes_pins_probe_observation(self):
        rng = np.random.default_rng(5)
        arrived = rng.integers(0, 8, size=(6, 8), dtype=np.int64)
        sent = np.tile(np.arange(8, dtype=np.int64), (6, 1))
        expected = [
            obs.syndrome for obs in observations_from_arrays(sent, arrived)
        ]
        assert decode_syndromes(arrived) == expected

    def test_decode_flags_dead_sentinels(self):
        arrived = np.arange(8, dtype=np.int64).reshape(1, 8)
        arrived = arrived.copy()
        arrived[0, 5] = DEAD_ADDRESS
        assert decode_syndromes(arrived) == [(5,)]

    def test_shape_validation(self):
        with pytest.raises(FaultError):
            decode_syndromes(np.arange(8))
        with pytest.raises(FaultError):
            observations_from_arrays(
                np.zeros((2, 4), dtype=np.int64),
                np.zeros((3, 4), dtype=np.int64),
            )


class TestCompiledBenesFailover:
    def test_route_before_compile_refuses(self):
        spare = CompiledBenesFailover(3)
        assert not spare.compiled
        with pytest.raises(FaultServiceError):
            spare.route(identity_words(8))

    def test_compiled_route_matches_real_benes(self):
        spare = CompiledBenesFailover(3, verify_every=1)
        spare.compile_for([(SwitchCoordinate(2, 0, 0, 0, 0), 1)])
        outputs, trace = spare.route(reversal_words(8))
        assert trace is None
        assert [w.address for w in outputs] == list(range(8))
        assert [w.payload for w in outputs] == list(reversed(range(8)))
        # verify_every=1 cross-checks every batch against BenesNetwork.
        assert spare.cross_checks >= spare.batches

    def test_recompiles_only_for_new_fault_sets(self):
        spare = CompiledBenesFailover(3)
        fault_set = [(SwitchCoordinate(2, 0, 0, 0, 0), 1)]
        spare.compile_for(fault_set)
        first = spare.plans_compiled
        spare.compile_for(list(fault_set))
        assert spare.plans_compiled == first  # same set: cached plan
        spare.compile_for([(SwitchCoordinate(1, 0, 0, 0, 0), 0)])
        assert spare.plans_compiled == first + 1


class TestResilientVectorFabric:
    def test_clean_traffic_stays_healthy(self):
        fabric = ResilientVectorFabric(3)
        for index in range(3):
            result = fabric.submit(
                [(line + index) % 8 for line in range(8)], tag=index
            )
            assert result.mode == "clean"
        assert fabric.state is HealthState.HEALTHY
        assert fabric.counters.words_clean == 24

    def test_stuck_fault_walks_full_lifecycle(self):
        mask = fault_mask_for(3, [(SwitchCoordinate(2, 0, 0, 0, 0), 1)])
        fabric = ResilientVectorFabric(3, fault_mask=mask)
        permutation = list(reversed(range(8)))
        modes = [
            fabric.submit(permutation, tag=index).mode for index in range(4)
        ]
        if not fabric.registry.is_quarantined:
            fabric.check(tag="scheduled")
            modes.append(fabric.submit(permutation, tag="post").mode)
        assert fabric.state is HealthState.QUARANTINED
        assert modes[-1] == "failover"
        kinds = fabric.registry.event_kinds()
        assert kinds["failover-plan"] == 1
        assert kinds["quarantine"] == 1
        assert fabric.spare.compiled
        # Every submitted word was delivered to its own line.
        assert fabric.counters.words_delivered == 8 * len(modes)

    def test_parity_with_object_service(self):
        coordinate = SwitchCoordinate(2, 0, 0, 0, 0)
        vec = ResilientVectorFabric(
            3, fault_mask=fault_mask_for(3, [(coordinate, 1)])
        )
        obj = ResilientFabric(
            3,
            pipeline=PipelinedBNBFabric(
                3, control_override=stuck_control_override(2, 0, 0, 0, 0, 1)
            ),
        )
        permutation = list(reversed(range(8)))
        for index in range(4):
            result_vec = vec.submit(permutation, tag=index)
            result_obj = obj.submit(permutation, tag=index)
            assert result_vec.mode == result_obj.mode
            assert [w.payload for w in result_vec.outputs] == [
                w.payload for w in result_obj.outputs
            ]
        assert vec.state is obj.state
        assert sorted(vec.registry.confirmed_faults) == sorted(
            obj.registry.confirmed_faults
        )

    def test_live_injection_quarantines(self):
        fabric = ResilientVectorFabric(3)
        permutation = list(reversed(range(8)))
        assert fabric.submit(permutation, tag="before").mode == "clean"
        fabric.inject_stuck_control(SwitchCoordinate(2, 0, 0, 0, 0), 1)
        for index in range(3):
            fabric.submit(permutation, tag=index)
        if not fabric.registry.is_quarantined:
            fabric.check(tag="post-injection")
        assert fabric.state is HealthState.QUARANTINED
        kinds = fabric.registry.event_kinds()
        assert kinds["injection"] == 1
        assert fabric.submit(permutation, tag="after").mode == "failover"

    def test_dead_link_quarantines_without_hypotheses(self):
        mask = build_fault_mask(3, dead_links=[(1, 3)])
        fabric = ResilientVectorFabric(3, fault_mask=mask)
        permutation = list(reversed(range(8)))
        for index in range(4):
            result = fabric.submit(permutation, tag=index)
            assert result.delivered == 8
        assert fabric.state is HealthState.QUARANTINED
        # A dead link matches no stuck-control hypothesis; the service
        # must still quarantine and ride the spare rather than wedge.
        assert fabric.submit(permutation, tag="after").mode == "failover"

    def test_strict_localization_refuses_unexplained_faults(self):
        mask = build_fault_mask(3, dead_links=[(1, 3)])
        fabric = ResilientVectorFabric(
            3, fault_mask=mask, strict_localization=True
        )
        with pytest.raises(FaultServiceError):
            for index in range(4):
                fabric.submit(list(reversed(range(8))), tag=index)

    def test_check_runs_pipelined_bist(self):
        fabric = ResilientVectorFabric(3)
        probes = []
        fabric.probe_hook = lambda probe, obs: probes.append(obs.clean)
        fabric.check(tag="proactive")
        assert probes == [True] * fabric.schedule.probe_count
        assert fabric.state is HealthState.HEALTHY


class TestRandomFaultSet:
    def test_seed_determinism(self):
        assert random_fault_set(3, 2, seed=11) == random_fault_set(
            3, 2, seed=11
        )
        assert random_fault_set(3, 2, seed=11) != random_fault_set(
            3, 2, seed=12
        )

    def test_explicit_rng_wins_over_seed(self):
        import random as stdlib_random

        from_rng = random_fault_set(
            3, 2, seed=999, rng=stdlib_random.Random(11)
        )
        assert from_rng == random_fault_set(3, 2, seed=11)

    def test_count_validation(self):
        with pytest.raises(FaultError):
            random_fault_set(3, -1)
        with pytest.raises(FaultError):
            random_fault_set(2, 10_000)

    def test_faults_are_valid_coordinates(self):
        faults = random_fault_set(3, 3, seed=5)
        assert len(faults) == 3
        mask = fault_mask_for(3, faults)  # build_fault_mask validates
        assert len(mask.stuck) == 3
