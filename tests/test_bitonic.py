"""Tests for the bitonic sorting network (extension baseline)."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.baselines import BitonicNetwork, bitonic_sort_pairs
from repro.baselines.bitonic import bitonic_comparator_count
from repro.permutations import random_permutation


class TestStructure:
    def test_comparator_count_closed_form(self):
        for m in range(1, 10):
            n = 1 << m
            assert len(bitonic_sort_pairs(n)) == bitonic_comparator_count(n)
            assert BitonicNetwork(m).comparator_count == bitonic_comparator_count(n)

    def test_known_counts(self):
        assert bitonic_comparator_count(4) == 6
        assert bitonic_comparator_count(8) == 24

    def test_stage_count(self):
        for m in range(1, 8):
            assert BitonicNetwork(m).stage_count == m * (m + 1) // 2

    def test_more_comparators_than_odd_even(self):
        """Bitonic pays more comparators for its regularity — part of
        why the paper compares against odd-even merge."""
        from repro.baselines import batcher_comparator_count

        for m in range(3, 10):
            n = 1 << m
            assert bitonic_comparator_count(n) > batcher_comparator_count(n)

    def test_cost_model_consistency(self):
        net = BitonicNetwork(4, w=8)
        assert net.switch_slice_count == net.comparator_count * 12
        assert net.function_slice_count == net.comparator_count * 4
        assert net.propagation_delay() == net.stage_count * (4 + 1)


class TestSorting:
    def test_zero_one_principle_exhaustive_n8(self):
        net = BitonicNetwork(3)
        for bits in itertools.product([0, 1], repeat=8):
            out, _ = net.sort(list(bits))
            assert out == sorted(bits), bits

    @given(st.lists(st.integers(0, 999), min_size=16, max_size=16))
    def test_sorts_arbitrary_keys(self, keys):
        out, _ = BitonicNetwork(4).sort(keys)
        assert out == sorted(keys)

    def test_routes_permutations(self):
        net = BitonicNetwork(4)
        for seed in range(20):
            pi = random_permutation(16, rng=seed)
            out, _ = net.route(pi.to_list())
            assert [w.address for w in out] == list(range(16))

    def test_records_count(self):
        net = BitonicNetwork(3)
        _out, records = net.sort(list(range(8)), record=True)
        assert records is not None
        assert len(records) == net.comparator_count

    def test_validation(self):
        with pytest.raises(ValueError):
            BitonicNetwork(-1)
        with pytest.raises(ValueError):
            BitonicNetwork(2).sort([1, 2, 3])
