"""Serving on registered backends: pinned engines, auto-select, prewarm.

The gateway half of the backend arena: ``engine="krbenes"`` /
``"msorter"`` pin a registered backend, ``engine="auto"`` serves the
measured winner, and either way the compile-once caches are warm
before the first frame — a server boot pays the cold start, traffic
never does.
"""

import numpy as np
import pytest

from repro.backends import backend_names, compiled_backend
from repro.backends.arena import clear_arena_cache
from repro.core.plan import compiled_plan
from repro.obs import GatewayInstrumentation, Registry
from repro.server import AsyncGateway, BackendPlane, GatewayConfig

pytestmark = pytest.mark.asyncio_suite


def _config(engine, m=3, planes=1, capacity=64, window=8):
    return GatewayConfig(
        m=m,
        planes=planes,
        queue_capacity=capacity,
        engine=engine,
        batch_window=window,
    )


def _burst(m, frames, seed=0):
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [rng.permutation(1 << m) for _ in range(frames)]
    ).astype(np.int64)


class TestConfigValidation:
    def test_registered_backend_names_are_valid_engines(self):
        for name in backend_names():
            assert _config(name).engine == name

    def test_auto_is_a_valid_engine(self):
        assert _config("auto").engine == "auto"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="registered"):
            _config("warp-drive")

    def test_backend_engines_have_no_resilient_variant(self):
        for engine in ("auto", "msorter", "krbenes", "batch"):
            with pytest.raises(ValueError, match="no resilient variant"):
                GatewayConfig(m=3, engine=engine, resilient=True)


class TestPinnedBackendServing:
    @pytest.mark.parametrize("engine", ["krbenes", "msorter"])
    def test_full_delivery_on_pinned_backend(self, run_async, engine):
        async def scenario():
            async with AsyncGateway(_config(engine)) as gateway:
                dests = _burst(3, frames=8)
                result = await gateway.send_batch(dests)
                return result, gateway.stats()

        result, stats = run_async(scenario())
        assert result.delivered == 64
        assert result.mode_table == ["clean"]
        assert stats["engine"] == engine
        assert stats["backend"] == engine
        assert stats["arena"] is None
        plane = stats["planes"][0]
        assert plane["engine"] == "backend"
        assert plane["backend"] == engine
        assert plane["batches_routed"] >= 1

    def test_planes_share_one_compiled_engine(self):
        gateway = AsyncGateway(_config("msorter", planes=3))
        engines = {id(plane.backend) for plane in gateway.planes}
        assert engines == {id(compiled_backend("msorter", 3))}


class TestAutoSelect:
    def test_auto_serves_the_measured_winner(self, run_async):
        async def scenario():
            async with AsyncGateway(_config("auto")) as gateway:
                result = await gateway.send_batch(_burst(3, frames=6))
                return result, gateway.stats(), gateway.arena_decision

        result, stats, decision = run_async(scenario())
        assert result.delivered == 48
        assert decision is not None
        assert decision.workload == "batch"
        assert decision.backend == min(
            decision.table, key=decision.table.__getitem__
        )
        assert stats["backend"] == decision.backend
        assert stats["arena"]["backend"] == decision.backend
        assert sorted(stats["arena"]["seconds_per_frame"]) == backend_names()
        assert stats["arena"]["spread"] >= 1.0
        assert stats["planes"][0]["backend"] == decision.backend

    def test_second_auto_gateway_reuses_the_calibration(self, monkeypatch):
        from repro.backends import arena as arena_module

        AsyncGateway(_config("auto"))  # pays the calibration

        def _boom(*_args, **_kwargs):
            raise AssertionError("auto boot re-timed a cached cell")

        monkeypatch.setattr(arena_module, "_time_single", _boom)
        monkeypatch.setattr(arena_module, "_time_batch", _boom)
        gateway = AsyncGateway(_config("auto"))
        assert gateway.backend_name in backend_names()


class TestObservability:
    def test_backend_info_gauge_exported(self, run_async):
        async def scenario():
            gateway = AsyncGateway(_config("msorter"))
            instr = GatewayInstrumentation(
                gateway, registry=Registry()
            ).attach()
            async with gateway:
                await gateway.send_batch(_burst(3, frames=2))
            return instr

        instr = run_async(scenario())
        snap = instr.metrics_snapshot()
        samples = snap["repro_backend_info"]["samples"]
        assert [
            (s["labels"]["backend"], s["labels"]["m"], s["value"])
            for s in samples
        ] == [("msorter", "3", 1.0)]
        text = instr.render_prometheus()
        assert 'repro_backend_info{backend="msorter",m="3"} 1' in text

    def test_object_gateway_reports_object_backend(self):
        gateway = AsyncGateway(GatewayConfig(m=3, engine="object"))
        instr = GatewayInstrumentation(
            gateway, registry=Registry()
        ).attach()
        snap = instr.metrics_snapshot()
        labels = snap["repro_backend_info"]["samples"][0]["labels"]
        assert labels["backend"] == "bnb-object"
        assert gateway.stats()["backend"] == "bnb-object"


class TestPrewarm:
    """Boot pays every compile; traffic hits only warm caches."""

    def test_backend_gateway_compiles_at_boot_not_under_traffic(
        self, run_async
    ):
        compiled_plan.cache_clear()
        compiled_backend.cache_clear()
        clear_arena_cache()
        gateway = AsyncGateway(_config("msorter"))
        # Construction compiled both the shared routing plan and the
        # chosen backend (the prewarm hook) — before any frame exists.
        assert compiled_plan.cache_info().currsize >= 1
        assert compiled_backend.cache_info().currsize >= 1
        plan_misses = compiled_plan.cache_info().misses
        backend_misses = compiled_backend.cache_info().misses

        async def scenario():
            async with gateway:
                return await gateway.send_batch(_burst(3, frames=8))

        result = run_async(scenario())
        assert result.delivered == 64
        # No compile happened while traffic flowed.
        assert compiled_plan.cache_info().misses == plan_misses
        assert compiled_backend.cache_info().misses == backend_misses

    def test_batch_gateway_prewarms_the_plan(self):
        compiled_plan.cache_clear()
        AsyncGateway(_config("batch"))
        assert compiled_plan.cache_info().currsize >= 1

    def test_first_frame_latency_shows_no_cold_start(self, run_async):
        # The serving-visible form of the prewarm contract: the first
        # frame's delivery latency (in cycles — the gateway's own
        # stage timeline) equals the steady state, no warm-up bubble.
        async def scenario():
            async with AsyncGateway(_config("msorter", window=1)) as gw:
                receipts = []
                for k in range(6):
                    receipts.append(await gw.send(k % gw.n, payload=k))
                return [r.latency_cycles for r in receipts]

        latencies = run_async(scenario())
        assert latencies[0] == min(latencies)

    def test_standalone_backend_plane_accepts_a_name(self):
        plane = BackendPlane(0, 3, backend="krbenes")
        assert plane.backend is compiled_backend("krbenes", 3)
        assert plane.describe()["backend"] == "krbenes"
