"""Unit tests for sw(p) switch boxes and pair-control application."""

import pytest
from hypothesis import given, strategies as st

from repro.core import SimpleSwitchBox, apply_pair_controls, controls_to_permutation


class TestApplyPairControls:
    def test_straight_and_exchange(self):
        assert apply_pair_controls(["a", "b", "c", "d"], [0, 1]) == [
            "a",
            "b",
            "d",
            "c",
        ]

    def test_length_validation(self):
        with pytest.raises(ValueError):
            apply_pair_controls(["a", "b", "c"], [0])

    @given(
        st.lists(st.integers(), min_size=8, max_size=8),
        st.lists(st.integers(0, 1), min_size=4, max_size=4),
    )
    def test_involution(self, lines, controls):
        once = apply_pair_controls(lines, controls)
        twice = apply_pair_controls(once, controls)
        assert twice == lines

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=4))
    def test_matches_permutation_form(self, controls):
        lines = list(range(8))
        assert apply_pair_controls(lines, controls) == controls_to_permutation(
            controls
        ).apply(lines)


class TestControlsToPermutation:
    def test_values(self):
        pi = controls_to_permutation([1, 0])
        assert pi.mapping == (1, 0, 2, 3)

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            controls_to_permutation([2])


class TestSimpleSwitchBox:
    def test_counts(self):
        box = SimpleSwitchBox(3)
        assert box.size == 8
        assert box.switch_count == 4

    def test_apply(self):
        box = SimpleSwitchBox(2)
        assert box.apply([1, 2, 3, 4], [1, 1]) == [2, 1, 4, 3]

    def test_validation(self):
        box = SimpleSwitchBox(2)
        with pytest.raises(ValueError):
            box.apply([1, 2], [1, 1])
        with pytest.raises(ValueError):
            box.apply([1, 2, 3, 4], [1])
        with pytest.raises(ValueError):
            SimpleSwitchBox(0)
