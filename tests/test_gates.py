"""Unit tests for gate primitives."""

import pytest

from repro.hardware import GateType, evaluate_gate
from repro.hardware.gates import Gate


class TestEvaluate:
    def test_truth_tables(self):
        assert evaluate_gate(GateType.NOT, [0]) == 1
        assert evaluate_gate(GateType.AND, [1, 1]) == 1
        assert evaluate_gate(GateType.AND, [1, 0]) == 0
        assert evaluate_gate(GateType.OR, [0, 0]) == 0
        assert evaluate_gate(GateType.OR, [0, 1]) == 1
        assert evaluate_gate(GateType.XOR, [1, 1]) == 0
        assert evaluate_gate(GateType.XNOR, [1, 1]) == 1
        assert evaluate_gate(GateType.NAND, [1, 1]) == 0
        assert evaluate_gate(GateType.NOR, [0, 0]) == 1
        assert evaluate_gate(GateType.BUF, [1]) == 1
        assert evaluate_gate(GateType.CONST0, []) == 0
        assert evaluate_gate(GateType.CONST1, []) == 1

    def test_mux_select(self):
        # inputs (sel, a, b): sel 0 -> a, sel 1 -> b
        assert evaluate_gate(GateType.MUX2, [0, 1, 0]) == 1
        assert evaluate_gate(GateType.MUX2, [1, 1, 0]) == 0

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.AND, [1, 2])

    def test_input_not_evaluable(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.INPUT, [])


class TestGateDataclass:
    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate(gate_id=0, gate_type=GateType.AND, inputs=(1,), output=2)
        with pytest.raises(ValueError):
            Gate(gate_id=0, gate_type=GateType.NOT, inputs=(1, 2), output=3)

    def test_valid_gate(self):
        gate = Gate(
            gate_id=0, gate_type=GateType.XOR, inputs=(0, 1), output=2, group="fn"
        )
        assert gate.group == "fn"
