"""Unit and property tests for the bit-sorter network — Theorem 1."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BitSorterNetwork
from repro.exceptions import UnbalancedInputError


def balanced_vectors(k):
    n = 1 << k
    for ones_positions in itertools.combinations(range(n), n // 2):
        bits = [0] * n
        for j in ones_positions:
            bits[j] = 1
        yield bits


class TestStructure:
    def test_splitter_layout(self):
        bsn = BitSorterNetwork(3)
        assert bsn.splitter_layout() == [(0, 1, 3), (1, 2, 2), (2, 4, 1)]

    def test_switch_count(self):
        for k in range(1, 6):
            assert BitSorterNetwork(k).switch_count == (1 << k) // 2 * k

    def test_function_node_count_matches_eq4(self):
        """Structural count equals the paper's closed form
        P log(P/2) - P/2 + 1."""
        for k in range(1, 8):
            p_size = 1 << k
            expected = p_size * (k - 1) - p_size // 2 + 1
            assert BitSorterNetwork(k).function_node_count == expected

    def test_rejects_k0(self):
        with pytest.raises(ValueError):
            BitSorterNetwork(0)


class TestTheorem1:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_exhaustive_balanced(self, k):
        """Every balanced vector sorts to 0 on even, 1 on odd outputs."""
        bsn = BitSorterNetwork(k)
        for bits in balanced_vectors(k):
            assert bsn.sort_check(bits), bits

    def test_k4_sampled(self):
        bsn = BitSorterNetwork(4)
        rng = random.Random(4)
        for _ in range(300):
            bits = [1] * 8 + [0] * 8
            rng.shuffle(bits)
            assert bsn.sort_check(bits)

    @settings(max_examples=60)
    @given(st.permutations(list(range(32))))
    def test_k5_property(self, order):
        bits = [1 if v < 16 else 0 for v in order]
        assert BitSorterNetwork(5).sort_check(bits)

    def test_unbalanced_rejected(self):
        with pytest.raises(UnbalancedInputError):
            BitSorterNetwork(2).sort_check([1, 1, 1, 0])


class TestFollowerRouting:
    def test_words_ride_with_their_key_bits(self):
        bsn = BitSorterNetwork(3)
        keys = [1, 0, 1, 0, 0, 1, 0, 1]
        words = [(f"w{j}", keys[j]) for j in range(8)]
        out, _ = bsn.route_words(words, key_of=lambda w: w[1])
        # Words with key 0 end on even lines, key 1 on odd lines.
        for line, (_name, key) in enumerate(out):
            assert key == (line & 1)

    def test_multiset_preserved(self):
        bsn = BitSorterNetwork(3)
        words = list(range(100, 108))
        keys = [0, 1, 1, 0, 1, 0, 0, 1]
        paired = list(zip(words, keys))
        out, _ = bsn.route_words(paired, key_of=lambda w: w[1])
        assert sorted(w for w, _k in out) == words

    def test_length_validation(self):
        with pytest.raises(ValueError):
            BitSorterNetwork(2).route_words([1, 2], key_of=lambda w: w)


class TestRecords:
    def test_record_covers_all_splitters(self):
        bsn = BitSorterNetwork(3)
        bits = [1, 0, 1, 0, 0, 1, 0, 1]
        _out, record = bsn.route_bits(bits, record=True)
        assert record is not None
        assert set(record.splitters) == {
            (0, 0),
            (1, 0),
            (1, 1),
            (2, 0),
            (2, 1),
            (2, 2),
            (2, 3),
        }
        assert record.total_switch_settings() == bsn.switch_count

    def test_stage_vectors_balanced_per_block(self):
        """Theorem 1's induction: entering stage l, every block of
        2**(k-l) lines carries a balanced bit vector."""
        bsn = BitSorterNetwork(4)
        bits = [1] * 8 + [0] * 8
        random.Random(9).shuffle(bits)
        _out, record = bsn.route_bits(bits, record=True)
        assert record is not None
        for stage, vector in enumerate(record.stage_vectors):
            block = 1 << (4 - stage)
            for lo in range(0, 16, block):
                segment = vector[lo : lo + block]
                assert sum(segment) * 2 == block, (stage, lo)

    def test_exchange_fraction_range(self):
        bsn = BitSorterNetwork(3)
        _out, record = bsn.route_bits([1, 0, 1, 0, 0, 1, 0, 1], record=True)
        assert record is not None
        assert 0.0 <= record.exchange_fraction() <= 1.0

    def test_controls_of_accessor(self):
        bsn = BitSorterNetwork(2)
        _out, record = bsn.route_bits([1, 0, 0, 1], record=True)
        assert record is not None
        assert len(record.controls_of(0, 0)) == 2
