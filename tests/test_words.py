"""Unit tests for the Word type and word-list helpers."""

import pytest

from repro.core import Word, addresses_of, payloads_of, words_from_permutation
from repro.permutations import Permutation


class TestWord:
    def test_address_bits_msb_first(self):
        word = Word(address=0b101)
        assert word.address_bits(3) == [1, 0, 1]
        assert word.address_bit(0, 3) == 1  # b^0 is the MSB
        assert word.address_bit(1, 3) == 0

    def test_frozen(self):
        word = Word(address=1)
        with pytest.raises(Exception):
            word.address = 2  # type: ignore[misc]

    def test_repr(self):
        assert repr(Word(3)) == "Word(3)"
        assert "payload" in repr(Word(3, payload="msg"))


class TestWordLists:
    def test_words_from_permutation(self):
        pi = Permutation([2, 0, 1])
        words = words_from_permutation(pi)
        assert addresses_of(words) == [2, 0, 1]
        assert payloads_of(words) == [None, None, None]

    def test_payload_attachment(self):
        pi = Permutation([1, 0])
        words = words_from_permutation(pi, payloads=["a", "b"])
        assert payloads_of(words) == ["a", "b"]

    def test_payload_length_validation(self):
        with pytest.raises(ValueError):
            words_from_permutation(Permutation([1, 0]), payloads=["a"])
