"""Tests for figure data series and crossover analysis."""

import pytest

from repro.analysis.figures import (
    delay_growth_series,
    gbn_structure_summary,
    hardware_growth_series,
    ratio_crossovers,
)


class TestGrowthSeries:
    def test_hardware_series_monotone(self):
        series = hardware_growth_series(range(3, 12))
        for a, b in zip(series, series[1:]):
            assert b.batcher > a.batcher
            assert b.bnb > a.bnb
            assert b.koppelman > a.koppelman

    def test_ratio_decreases(self):
        series = hardware_growth_series(range(3, 16))
        ratios = [point.bnb_over_batcher for point in series]
        assert ratios == sorted(ratios, reverse=True)

    def test_delay_series_shapes(self):
        series = delay_growth_series(range(3, 10))
        assert all(p.bnb < p.batcher for p in series)
        assert series[0].n == 8

    def test_growth_point_fields(self):
        point = hardware_growth_series([4])[0]
        assert point.n == 16
        assert point.bnb_over_batcher == point.bnb / point.batcher


class TestCrossovers:
    def test_delay_thresholds_ordered(self):
        crossings = ratio_crossovers(
            thresholds=(0.85, 0.80, 0.75), quantity="delay"
        )
        n85, n80, n75 = crossings[0.85], crossings[0.80], crossings[0.75]
        assert n85 is not None and n80 is not None and n75 is not None
        assert n85 <= n80 <= n75

    def test_delay_never_reaches_below_two_thirds(self):
        crossings = ratio_crossovers(
            thresholds=(0.60,), quantity="delay", max_exponent=25
        )
        assert crossings[0.60] is None

    def test_hardware_below_one_half(self):
        crossings = ratio_crossovers(thresholds=(0.5,), quantity="hardware")
        assert crossings[0.5] is not None

    def test_quantity_validation(self):
        with pytest.raises(ValueError):
            ratio_crossovers(quantity="latency")


class TestGBNSummary:
    def test_fig1_inventory(self):
        summary = gbn_structure_summary(3)
        assert summary == [
            {"stage": 0, "boxes": 1, "box_size": 8, "box_exponent": 3},
            {"stage": 1, "boxes": 2, "box_size": 4, "box_exponent": 2},
            {"stage": 2, "boxes": 4, "box_size": 2, "box_exponent": 1},
        ]
