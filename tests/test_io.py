"""JSON persistence round-trips."""

import pytest

from repro.analysis.scaling import bnb_delay_scaling
from repro.analysis.verification import verify_router
from repro.core import Word
from repro.hardware import bnb_inventory, wiring_cost
from repro.io import from_jsonable, load_json, save_json, to_jsonable
from repro.permutations import Permutation, random_permutation
from repro.topology.connections import unshuffle_connection


class TestRoundTrips:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "x", [1, 2], {"a": 1}):
            assert from_jsonable(to_jsonable(value)) == value

    def test_permutation(self):
        pi = random_permutation(16, rng=4)
        assert from_jsonable(to_jsonable(pi)) == pi

    def test_word_with_payload(self):
        word = Word(address=3, payload={"source": 7})
        back = from_jsonable(to_jsonable(word))
        assert back == word

    def test_hardware_inventory(self):
        inventory = bnb_inventory(4, w=8)
        back = from_jsonable(to_jsonable(inventory))
        assert back == inventory

    def test_wiring_cost(self):
        cost = wiring_cost(unshuffle_connection(16, 4))
        assert from_jsonable(to_jsonable(cost)) == cost

    def test_polynomial_fit(self):
        fit = bnb_delay_scaling(range(2, 8))
        back = from_jsonable(to_jsonable(fit))
        assert back == fit
        assert isinstance(back.coefficients, tuple)

    def test_verification_report(self):
        report = verify_router("bnb", 8, mode="sampled", samples=5)
        back = from_jsonable(to_jsonable(report))
        assert back.router == report.router
        assert back.delivered == report.delivered
        assert back.failures == report.failures

    def test_nested_structures(self):
        data = {"perms": [Permutation([1, 0]), Permutation([0, 1])], "n": 2}
        back = from_jsonable(to_jsonable(data))
        assert back["perms"][0] == Permutation([1, 0])


class TestFiles:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "result.json"
        inventory = bnb_inventory(3)
        save_json(inventory, path)
        assert load_json(path) == inventory
        # The file is human-readable JSON.
        assert '"__repro__"' in path.read_text()

    def test_stable_output(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_json(bnb_inventory(3), a)
        save_json(bnb_inventory(3), b)
        assert a.read_text() == b.read_text()


class TestErrors:
    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="cannot serialize"):
            to_jsonable(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown type tag"):
            from_jsonable({"__repro__": "Spaceship"})
