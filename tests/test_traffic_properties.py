"""Property-based sweep of :func:`complete_partial_permutation`.

The completion is the load-bearing step between messy traffic and the
Theorem-2 contract (both the offline :func:`route_partial` path and the
online frame scheduler ride it), so its invariants get an adversarial
hypothesis sweep: arbitrary hole patterns, duplicate requests, and
out-of-range destinations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.traffic import coalesce_frame, complete_partial_permutation
from repro.exceptions import InputError

SIZES = st.sampled_from([2, 4, 8, 16, 32])


@st.composite
def partial_requests(draw):
    """A valid partial request: holes anywhere, distinct in-range dests."""
    n = draw(SIZES)
    destinations = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            max_size=n,
            unique=True,
        )
    )
    slots = draw(st.sets(st.integers(0, n - 1), min_size=len(destinations), max_size=len(destinations)))
    request = [None] * n
    for slot, dest in zip(sorted(slots), destinations):
        request[slot] = dest
    return n, request


class TestCompletionProperties:
    @given(partial_requests())
    @settings(max_examples=300, deadline=None)
    def test_completion_is_permutation_preserving_requests(self, case):
        n, request = case
        full, real = complete_partial_permutation(request)
        # A full permutation of 0..n-1 ...
        assert sorted(full) == list(range(n))
        # ... that preserves every requested (source, dest) pair ...
        for source, dest in enumerate(request):
            if dest is not None:
                assert full[source] == dest
                assert real[source] is True
            else:
                assert real[source] is False
        # ... and marks exactly the genuine requests as real.
        assert sum(real) == sum(dest is not None for dest in request)

    @given(partial_requests())
    @settings(max_examples=150, deadline=None)
    def test_fillers_use_exactly_the_unused_addresses(self, case):
        n, request = case
        full, real = complete_partial_permutation(request)
        requested = {dest for dest in request if dest is not None}
        fillers = {full[j] for j in range(n) if not real[j]}
        assert fillers == set(range(n)) - requested

    @given(partial_requests())
    @settings(max_examples=150, deadline=None)
    def test_completion_is_deterministic(self, case):
        _n, request = case
        assert complete_partial_permutation(request) == (
            complete_partial_permutation(list(request))
        )

    @given(
        SIZES,
        st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_duplicate_destination_rejected(self, n, data):
        dest = data.draw(st.integers(0, n - 1))
        first, second = data.draw(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda pair: pair[0] != pair[1]
            )
        )
        request = [None] * n
        request[first] = dest
        request[second] = dest
        with pytest.raises(InputError):
            complete_partial_permutation(request)

    @given(SIZES, st.integers())
    @settings(max_examples=150, deadline=None)
    def test_out_of_range_destination_rejected(self, n, dest):
        if 0 <= dest < n:
            dest = n + abs(dest)
        request = [dest] + [None] * (n - 1)
        with pytest.raises(InputError):
            complete_partial_permutation(request)


class TestCoalesceProperties:
    @given(partial_requests())
    @settings(max_examples=150, deadline=None)
    def test_coalesce_frame_agrees_with_completion(self, case):
        n, request = case
        heads = [dest for dest in request if dest is not None]
        plan = coalesce_frame(heads, n)
        assert sorted(plan.addresses) == list(range(n))
        assert set(plan.line_of) == set(heads)
        for dest, line in plan.line_of.items():
            assert plan.addresses[line] == dest
        assert plan.fill == pytest.approx(len(heads) / n)
