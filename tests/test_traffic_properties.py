"""Property-based sweep of :func:`complete_partial_permutation`.

The completion is the load-bearing step between messy traffic and the
Theorem-2 contract (both the offline :func:`route_partial` path and the
online frame scheduler ride it), so its invariants get an adversarial
hypothesis sweep: arbitrary hole patterns, duplicate requests, and
out-of-range destinations.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.bnb import BNBNetwork
from repro.core.traffic import (
    MultipassRouter,
    coalesce_frame,
    complete_partial_permutation,
)
from repro.exceptions import InputError
from repro.permutations.generators import zipf_destinations

SIZES = st.sampled_from([2, 4, 8, 16, 32])


@st.composite
def partial_requests(draw):
    """A valid partial request: holes anywhere, distinct in-range dests."""
    n = draw(SIZES)
    destinations = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            max_size=n,
            unique=True,
        )
    )
    slots = draw(st.sets(st.integers(0, n - 1), min_size=len(destinations), max_size=len(destinations)))
    request = [None] * n
    for slot, dest in zip(sorted(slots), destinations):
        request[slot] = dest
    return n, request


class TestCompletionProperties:
    @given(partial_requests())
    @settings(max_examples=300, deadline=None)
    def test_completion_is_permutation_preserving_requests(self, case):
        n, request = case
        full, real = complete_partial_permutation(request)
        # A full permutation of 0..n-1 ...
        assert sorted(full) == list(range(n))
        # ... that preserves every requested (source, dest) pair ...
        for source, dest in enumerate(request):
            if dest is not None:
                assert full[source] == dest
                assert real[source] is True
            else:
                assert real[source] is False
        # ... and marks exactly the genuine requests as real.
        assert sum(real) == sum(dest is not None for dest in request)

    @given(partial_requests())
    @settings(max_examples=150, deadline=None)
    def test_fillers_use_exactly_the_unused_addresses(self, case):
        n, request = case
        full, real = complete_partial_permutation(request)
        requested = {dest for dest in request if dest is not None}
        fillers = {full[j] for j in range(n) if not real[j]}
        assert fillers == set(range(n)) - requested

    @given(partial_requests())
    @settings(max_examples=150, deadline=None)
    def test_completion_is_deterministic(self, case):
        _n, request = case
        assert complete_partial_permutation(request) == (
            complete_partial_permutation(list(request))
        )

    @given(
        SIZES,
        st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_duplicate_destination_rejected(self, n, data):
        dest = data.draw(st.integers(0, n - 1))
        first, second = data.draw(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda pair: pair[0] != pair[1]
            )
        )
        request = [None] * n
        request[first] = dest
        request[second] = dest
        with pytest.raises(InputError):
            complete_partial_permutation(request)

    @given(SIZES, st.integers())
    @settings(max_examples=150, deadline=None)
    def test_out_of_range_destination_rejected(self, n, dest):
        if 0 <= dest < n:
            dest = n + abs(dest)
        request = [dest] + [None] * (n - 1)
        with pytest.raises(InputError):
            complete_partial_permutation(request)


class TestCoalesceProperties:
    @given(partial_requests())
    @settings(max_examples=150, deadline=None)
    def test_coalesce_frame_agrees_with_completion(self, case):
        n, request = case
        heads = [dest for dest in request if dest is not None]
        plan = coalesce_frame(heads, n)
        assert sorted(plan.addresses) == list(range(n))
        assert set(plan.line_of) == set(heads)
        for dest, line in plan.line_of.items():
            assert plan.addresses[line] == dest
        assert plan.fill == pytest.approx(len(heads) / n)


@st.composite
def zipf_request_vectors(draw):
    """A Zipf-skewed request vector: the hotspot traffic of
    ``docs/traffic.md``, with heavy duplicate destinations by design.

    Returns ``(m, requests)`` where requests is a full-length input
    vector (idle lines ``None``) whose destinations are drawn from a
    Zipf law — the adversarial input for the round decomposition.
    """
    m = draw(st.sampled_from([1, 2, 3, 4, 5]))
    n = 1 << m
    count = draw(st.integers(min_value=1, max_value=n))
    alpha = draw(st.sampled_from([0.8, 1.1, 1.5, 2.5]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    dests = zipf_destinations(n, count, alpha=alpha, rng=random.Random(seed))
    lines = draw(
        st.sets(st.integers(0, n - 1), min_size=count, max_size=count)
    )
    requests = [None] * n
    for line, dest in zip(sorted(lines), dests):
        requests[line] = (dest, f"pkt{line}")
    return m, requests


class TestSkewedMultisetProperties:
    """Heavy-duplicate (Zipf hotspot) inputs through the full chain:
    round decomposition -> completion -> coalescing."""

    @given(zipf_request_vectors())
    @settings(max_examples=120, deadline=None)
    def test_round_decomposition_partitions_the_multiset(self, case):
        m, requests = case
        n = 1 << m
        router = MultipassRouter(BNBNetwork(m))
        rounds = router.plan_rounds(requests)
        multiplicity = {}
        for request in requests:
            if request is not None:
                multiplicity[request[0]] = multiplicity.get(request[0], 0) + 1
        # Rounds == worst contention; every round is duplicate-free and
        # the rounds partition the request multiset exactly.
        assert len(rounds) == max(multiplicity.values())
        seen = []
        for round_requests in rounds:
            dests = [r[0] for r in round_requests if r is not None]
            assert len(set(dests)) == len(dests)
            seen.extend(r for r in round_requests if r is not None)
        assert sorted(seen) == sorted(
            r for r in requests if r is not None
        )

    @given(zipf_request_vectors())
    @settings(max_examples=80, deadline=None)
    def test_each_round_completes_and_coalesces(self, case):
        m, requests = case
        n = 1 << m
        router = MultipassRouter(BNBNetwork(m))
        for round_requests in router.plan_rounds(requests):
            dests = [
                None if r is None else r[0] for r in round_requests
            ]
            full, real = complete_partial_permutation(dests)
            assert sorted(full) == list(range(n))
            heads = [d for d in dests if d is not None]
            plan = coalesce_frame(heads, n)
            assert sorted(plan.addresses) == list(range(n))
            assert set(plan.line_of) == set(heads)

    @given(zipf_request_vectors())
    @settings(max_examples=60, deadline=None)
    def test_skewed_traffic_delivered_exactly_once(self, case):
        m, requests = case
        router = MultipassRouter(BNBNetwork(m))
        result = router.route(requests)
        delivered = sorted(
            payload
            for output in range(1 << m)
            for payload in result.all_payloads_at(output)
        )
        assert delivered == sorted(
            r[1] for r in requests if r is not None
        )

    @given(zipf_request_vectors())
    @settings(max_examples=60, deadline=None)
    def test_duplicates_rejected_before_decomposition(self, case):
        _m, requests = case
        dests = [None if r is None else r[0] for r in requests]
        multiplicity = {}
        for dest in dests:
            if dest is not None:
                multiplicity[dest] = multiplicity.get(dest, 0) + 1
        if multiplicity and max(multiplicity.values()) > 1:
            # The completion refuses a duplicated destination outright —
            # only the round decomposition may serve such a multiset.
            with pytest.raises(InputError):
                complete_partial_permutation(dests)
        else:
            full, _real = complete_partial_permutation(dests)
            assert sorted(full) == list(range(len(dests)))
