"""The frame-axis batch kernel: word-for-word parity with every oracle.

``route_frame_batch`` must agree row for row with the single-frame
vector kernel *and* with the reference object pipeline — healthy and
faulty alike — because it is the kernel the gateway's ``send_batch``
path trusts for whole windows of live frames at once.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Word, route_frame_sources
from repro.core.pipeline import PipelinedBNBFabric
from repro.core.pipeline_fast import route_frame_batch
from repro.core.plan import (
    batch_stage_take_indices,
    build_fault_mask,
    compiled_plan,
    stage_take_indices,
)
from repro.permutations import random_permutation


def _frames(m, batch, seed=0):
    rng = np.random.default_rng(seed)
    n = 1 << m
    return np.stack(
        [rng.permutation(n) for _ in range(batch)]
    ).astype(np.int64)


class TestHealthyParity:
    @pytest.mark.parametrize("m", [1, 2, 3, 6, 8])
    def test_rowwise_parity_with_single_frame_kernel(self, m):
        addresses = _frames(m, batch=13, seed=m)
        batched = route_frame_batch(m, addresses)
        for row in range(addresses.shape[0]):
            single = route_frame_sources(m, addresses[row])
            assert np.array_equal(batched[row], single), (m, row)

    def test_word_for_word_parity_with_object_pipeline_m6(self):
        """The acceptance-bar oracle: m=6 batch vs the object fabric.

        ``batched[b, line]`` claims the input line whose word reaches
        output ``line``; clocking the same permutations through the
        reference object pipeline must surface exactly those words, in
        exactly that order, on every frame of the batch.
        """
        m = 6
        addresses = _frames(m, batch=8, seed=42)
        batched = route_frame_batch(m, addresses)
        fabric = PipelinedBNBFabric(m)
        for b, row in enumerate(addresses):
            words = [
                Word(address=int(a), payload=(b, j))
                for j, a in enumerate(row)
            ]
            outputs = fabric.route_batch(words, tag=b)
            for line, word in enumerate(outputs):
                assert word.address == line  # delivered where addressed
                assert word.payload == (b, int(batched[b, line]))

    def test_single_row_batch_matches_single_frame(self):
        addresses = _frames(4, batch=1, seed=9)
        assert np.array_equal(
            route_frame_batch(4, addresses)[0],
            route_frame_sources(4, addresses[0]),
        )

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_hypothesis_batch_parity(self, data):
        m = data.draw(st.integers(1, 5), label="m")
        n = 1 << m
        batch = data.draw(st.integers(1, 6), label="batch")
        rows = [
            data.draw(st.permutations(list(range(n))), label=f"frame{b}")
            for b in range(batch)
        ]
        addresses = np.asarray(rows, dtype=np.int64)
        batched = route_frame_batch(m, addresses)
        for row in range(batch):
            assert np.array_equal(
                batched[row], route_frame_sources(m, addresses[row])
            )


class TestFaultyParity:
    def test_stuck_and_dead_parity(self):
        m = 3
        mask = build_fault_mask(
            m,
            stuck=[((0, 0, 0, 0, 0), 1), ((1, 1, 1, 0, 0), 0)],
            dead_links=[(2, 5)],
        )
        addresses = _frames(m, batch=9, seed=5)
        batched = route_frame_batch(m, addresses, mask=mask)
        for row in range(addresses.shape[0]):
            assert np.array_equal(
                batched[row],
                route_frame_sources(m, addresses[row], mask=mask),
            )

    def test_faulty_parity_m6(self):
        m = 6
        mask = build_fault_mask(
            m,
            stuck=[((2, 1, 2, 0, 1), 1)],
            dead_links=[(4, 17)],
        )
        addresses = _frames(m, batch=7, seed=6)
        batched = route_frame_batch(m, addresses, mask=mask)
        for row in range(addresses.shape[0]):
            assert np.array_equal(
                batched[row],
                route_frame_sources(m, addresses[row], mask=mask),
            )


class TestStageKernel:
    def test_batch_stage_take_matches_single_stage_take(self):
        m = 4
        plan = compiled_plan(m)
        addresses = _frames(m, batch=6, seed=3)
        for stage in plan.stages:
            batched = batch_stage_take_indices(plan, stage, addresses)
            for row in range(addresses.shape[0]):
                single = stage_take_indices(plan, stage, addresses[row])
                assert np.array_equal(batched[row], single), stage.stage


class TestValidation:
    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            route_frame_batch(3, np.arange(8, dtype=np.int64))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            route_frame_batch(3, np.zeros((2, 7), dtype=np.int64))

    def test_input_rows_not_mutated(self):
        addresses = _frames(3, batch=4, seed=8)
        copy = addresses.copy()
        route_frame_batch(3, addresses)
        assert np.array_equal(addresses, copy)
