"""Differential fuzzing: every implementation, one oracle.

Hypothesis drives sizes and permutations; for each case all available
implementations must agree with the crossbar oracle: object-model BNB,
vectorized BNB, gate-level BNB (small sizes), Batcher, bitonic, Benes,
Koppelman, Clos.  This is the test that turns N independent
implementations into one confidence argument.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    BatcherNetwork,
    BenesNetwork,
    BitonicNetwork,
    ClosNetwork,
    Crossbar,
    KoppelmanSRPN,
)
from repro.core import BNBNetwork, Word
from repro.hardware import build_bnb_netlist
from repro.permutations import Permutation

_NETLISTS = {m: build_bnb_netlist(m) for m in (1, 2, 3)}


@st.composite
def sized_permutations(draw):
    m = draw(st.integers(1, 4))
    mapping = draw(st.permutations(list(range(1 << m))))
    return m, Permutation(mapping)


@settings(max_examples=80, deadline=None)
@given(sized_permutations())
def test_all_implementations_agree(case):
    m, pi = case
    n = 1 << m
    words = [Word(address=pi(j), payload=j) for j in range(n)]
    oracle = [(w.address, w.payload) for w in Crossbar(n).route(list(words))]

    def check(outputs):
        assert [(w.address, w.payload) for w in outputs] == oracle

    check(BNBNetwork(m).route(list(words))[0])
    check(BatcherNetwork(m).route(list(words))[0])
    check(BitonicNetwork(m).route(list(words))[0])
    check(BenesNetwork(m).route(list(words))[0])
    check(KoppelmanSRPN(m).route(list(words)))
    check(ClosNetwork(2, 2, max(n // 2, 1)).route(list(words)))

    fast = BNBNetwork(m).route_fast(np.array(pi.to_list()))
    assert fast.tolist() == list(range(n))

    if m in _NETLISTS:
        netlist, ports = _NETLISTS[m]
        decoded = ports.decode_outputs(
            netlist.evaluate(ports.input_assignment(pi.to_list()))
        )
        assert decoded == list(range(n))


@st.composite
def frame_schedules(draw):
    """A pipelined-fabric driving schedule: per cycle either an idle
    bubble or a (possibly partial) frame of destination requests."""
    m = draw(st.integers(1, 4))
    n = 1 << m
    cycles = draw(st.integers(1, 12))
    schedule = []
    for _ in range(cycles):
        if draw(st.booleans()):
            schedule.append(None)  # idle cycle: no frame enters
            continue
        # A partial frame: each input independently idle or requesting.
        subset = draw(
            st.sets(st.integers(0, n - 1), max_size=n)
        )
        order = draw(st.permutations(sorted(subset)))
        requests = [None] * n
        lines = draw(
            st.permutations(list(range(n)))
        )
        for line, dest in zip(lines, order):
            requests[line] = dest
        schedule.append(requests)
    return m, schedule


@settings(max_examples=60, deadline=None)
@given(frame_schedules())
def test_vector_pipeline_matches_object_pipeline(case):
    """The compiled numpy engine and the object engine, driven with the
    identical sequence of (partial, idle-filled) frames and bubbles,
    must produce identical per-cycle deliveries — tag, address and
    payload order — and identical latency profiles."""
    from repro.core.pipeline import PipelinedBNBFabric
    from repro.core.pipeline_fast import VectorPipelinedFabric
    from repro.core.traffic import complete_partial_permutation

    m, schedule = case
    obj = PipelinedBNBFabric(m)
    vec = VectorPipelinedFabric(m)
    for tag, requests in enumerate(schedule):
        if requests is not None:
            full, is_real = complete_partial_permutation(requests)
            words = [
                Word(
                    address=address,
                    payload=(tag, line) if is_real[line] else None,
                )
                for line, address in enumerate(full)
            ]
            obj.offer_words(list(words), tag=tag)
            vec.offer_words(list(words), tag=tag)
        done_obj = obj.step()
        done_vec = vec.step()
        assert [
            (frame_tag, [(w.address, w.payload) for w in outputs])
            for frame_tag, outputs in done_obj
        ] == [
            (frame_tag, [(w.address, w.payload) for w in outputs])
            for frame_tag, outputs in done_vec
        ]
    drained_obj = obj.drain()
    drained_vec = vec.drain()
    assert [
        (frame_tag, [(w.address, w.payload) for w in outputs])
        for frame_tag, outputs in drained_obj
    ] == [
        (frame_tag, [(w.address, w.payload) for w in outputs])
        for frame_tag, outputs in drained_vec
    ]
    assert obj.stats().latencies == vec.stats().latencies


@st.composite
def faulted_frame_schedules(draw):
    """A fault set plus a driving schedule over the same fabric size.

    Faults are 0-3 distinct stuck control bits; the schedule reuses the
    partial/idle frame shape of :func:`frame_schedules` so faulty
    fabrics are exercised under bubbles and half-empty frames too.
    """
    from repro.faults import enumerate_switch_coordinates

    m = draw(st.integers(2, 3))
    n = 1 << m
    coordinates = list(enumerate_switch_coordinates(m))
    count = draw(st.integers(0, 3))
    picks = draw(
        st.lists(
            st.sampled_from(coordinates),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    faults = [(pick, draw(st.integers(0, 1))) for pick in picks]
    cycles = draw(st.integers(1, 8))
    schedule = []
    for _ in range(cycles):
        if draw(st.booleans()):
            schedule.append(None)
            continue
        subset = draw(st.sets(st.integers(0, n - 1), max_size=n))
        order = draw(st.permutations(sorted(subset)))
        requests = [None] * n
        lines = draw(st.permutations(list(range(n))))
        for line, dest in zip(lines, order):
            requests[line] = dest
        schedule.append(requests)
    return m, faults, schedule


@settings(max_examples=40, deadline=None)
@given(faulted_frame_schedules())
def test_faulty_vector_pipeline_matches_faulty_object_pipeline(case):
    """A fault set rendered as a vector FaultMask and as composed
    object-model control overrides must corrupt identically: same
    per-cycle deliveries under partial frames and idle bubbles."""
    from repro.core.pipeline import PipelinedBNBFabric
    from repro.core.pipeline_fast import VectorPipelinedFabric
    from repro.core.traffic import complete_partial_permutation
    from repro.faults import fault_mask_for, stuck_override_set

    m, faults, schedule = case
    obj = PipelinedBNBFabric(m, control_override=stuck_override_set(faults))
    vec = VectorPipelinedFabric(m, fault_mask=fault_mask_for(m, faults))
    for tag, requests in enumerate(schedule):
        if requests is not None:
            full, is_real = complete_partial_permutation(requests)
            words = [
                Word(
                    address=address,
                    payload=(tag, line) if is_real[line] else None,
                )
                for line, address in enumerate(full)
            ]
            obj.offer_words(list(words), tag=tag)
            vec.offer_words(list(words), tag=tag)
        done_obj = obj.step()
        done_vec = vec.step()
        assert [
            (frame_tag, [(w.address, w.payload) for w in outputs])
            for frame_tag, outputs in done_obj
        ] == [
            (frame_tag, [(w.address, w.payload) for w in outputs])
            for frame_tag, outputs in done_vec
        ]
    assert [
        (frame_tag, [(w.address, w.payload) for w in outputs])
        for frame_tag, outputs in obj.drain()
    ] == [
        (frame_tag, [(w.address, w.payload) for w in outputs])
        for frame_tag, outputs in vec.drain()
    ]


@settings(max_examples=15, deadline=None)
@given(faulted_frame_schedules())
def test_faulty_resilient_services_agree(case):
    """The whole robustness control loop, differentially: the object
    ResilientFabric and the vector ResilientVectorFabric seeded with
    the same fault set must agree on BIST syndromes, per-batch
    delivery modes, the quarantine decision and the confirmed
    hypothesis class."""
    from repro.core.pipeline import PipelinedBNBFabric
    from repro.faults import fault_mask_for, stuck_override_set
    from repro.service import ResilientFabric, ResilientVectorFabric

    m, faults, _ = case
    n = 1 << m
    obj = ResilientFabric(
        m,
        pipeline=PipelinedBNBFabric(
            m, control_override=stuck_override_set(faults)
        ),
    )
    vec = ResilientVectorFabric(m, fault_mask=fault_mask_for(m, faults))
    syndromes = {"obj": [], "vec": []}
    obj.probe_hook = lambda probe, obs: syndromes["obj"].append(obs.syndrome)
    vec.probe_hook = lambda probe, obs: syndromes["vec"].append(obs.syndrome)
    permutation = Permutation(list(range(1, n)) + [0])
    modes = {"obj": [], "vec": []}
    for index in range(3):
        for name, fabric in (("obj", obj), ("vec", vec)):
            result = fabric.submit(permutation.to_list(), tag=index)
            modes[name].append(result.mode)
            assert [w.address for w in result.outputs] == list(range(n))
    # Proactive BIST on whichever fabric has not yet self-diagnosed.
    for name, fabric in (("obj", obj), ("vec", vec)):
        if not fabric.registry.is_quarantined:
            fabric.check(tag="fuzz-bist")
    assert modes["obj"] == modes["vec"]
    assert syndromes["obj"] == syndromes["vec"]
    assert obj.state is vec.state
    assert sorted(obj.registry.confirmed_faults) == sorted(
        vec.registry.confirmed_faults
    )


@settings(max_examples=40, deadline=None)
@given(sized_permutations())
def test_record_and_replay_agree(case):
    """Recording a pass and replaying its controls reproduces it —
    for arbitrary sizes and permutations, not just the unit tests'."""
    from repro.faults import extract_controls, replay_controls

    m, pi = case
    n = 1 << m
    network = BNBNetwork(m)
    words = [Word(address=pi(j), payload=j) for j in range(n)]
    outputs, record = network.route(words, record=True)
    assert record is not None
    replayed = replay_controls(m, words, extract_controls(record))
    assert [(w.address, w.payload) for w in replayed] == [
        (w.address, w.payload) for w in outputs
    ]
