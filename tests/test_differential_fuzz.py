"""Differential fuzzing: every implementation, one oracle.

Hypothesis drives sizes and permutations; for each case all available
implementations must agree with the crossbar oracle: object-model BNB,
vectorized BNB, gate-level BNB (small sizes), Batcher, bitonic, Benes,
Koppelman, Clos.  This is the test that turns N independent
implementations into one confidence argument.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    BatcherNetwork,
    BenesNetwork,
    BitonicNetwork,
    ClosNetwork,
    Crossbar,
    KoppelmanSRPN,
)
from repro.core import BNBNetwork, Word
from repro.hardware import build_bnb_netlist
from repro.permutations import Permutation

_NETLISTS = {m: build_bnb_netlist(m) for m in (1, 2, 3)}


@st.composite
def sized_permutations(draw):
    m = draw(st.integers(1, 4))
    mapping = draw(st.permutations(list(range(1 << m))))
    return m, Permutation(mapping)


@settings(max_examples=80, deadline=None)
@given(sized_permutations())
def test_all_implementations_agree(case):
    m, pi = case
    n = 1 << m
    words = [Word(address=pi(j), payload=j) for j in range(n)]
    oracle = [(w.address, w.payload) for w in Crossbar(n).route(list(words))]

    def check(outputs):
        assert [(w.address, w.payload) for w in outputs] == oracle

    check(BNBNetwork(m).route(list(words))[0])
    check(BatcherNetwork(m).route(list(words))[0])
    check(BitonicNetwork(m).route(list(words))[0])
    check(BenesNetwork(m).route(list(words))[0])
    check(KoppelmanSRPN(m).route(list(words)))
    check(ClosNetwork(2, 2, max(n // 2, 1)).route(list(words)))

    fast = BNBNetwork(m).route_fast(np.array(pi.to_list()))
    assert fast.tolist() == list(range(n))

    if m in _NETLISTS:
        netlist, ports = _NETLISTS[m]
        decoded = ports.decode_outputs(
            netlist.evaluate(ports.input_assignment(pi.to_list()))
        )
        assert decoded == list(range(n))


@settings(max_examples=40, deadline=None)
@given(sized_permutations())
def test_record_and_replay_agree(case):
    """Recording a pass and replaying its controls reproduces it —
    for arbitrary sizes and permutations, not just the unit tests'."""
    from repro.faults import extract_controls, replay_controls

    m, pi = case
    n = 1 << m
    network = BNBNetwork(m)
    words = [Word(address=pi(j), payload=j) for j in range(n)]
    outputs, record = network.route(words, record=True)
    assert record is not None
    replayed = replay_controls(m, words, extract_controls(record))
    assert [(w.address, w.payload) for w in replayed] == [
        (w.address, w.payload) for w in outputs
    ]
