"""Cross-model integration tests.

The reproduction's strongest evidence is agreement between independent
implementations of the same network: the functional object model, the
vectorized numpy model, the gate-level netlist (levelized), the
event-driven DES and, for the routing contract, every baseline network
against the crossbar ground truth.
"""

import numpy as np
import pytest

from repro.analysis.complexity import bnb_delay
from repro.analysis.delay import bnb_measured_delay
from repro.baselines import (
    BatcherNetwork,
    BenesNetwork,
    BitonicNetwork,
    Crossbar,
    KoppelmanSRPN,
)
from repro.core import BNBNetwork, Word
from repro.hardware import build_bnb_netlist, build_bsn_netlist
from repro.permutations import PermutationSampler, random_permutation
from repro.sim import GateLevelSimulator


class TestAllNetworksAgree:
    """Every permutation network must equal the crossbar's output."""

    @pytest.mark.parametrize("seed", range(5))
    def test_n16_all_routers(self, seed):
        pi = random_permutation(16, rng=seed)
        payloads = [f"p{j}" for j in range(16)]
        words = [Word(address=pi(j), payload=payloads[j]) for j in range(16)]
        truth = Crossbar(16).route(list(words))

        bnb_out, _ = BNBNetwork(4).route(list(words))
        batcher_out, _ = BatcherNetwork(4).route(list(words))
        bitonic_out, _ = BitonicNetwork(4).route(list(words))
        benes_out, _ = BenesNetwork(4).route(list(words))
        koppelman_out = KoppelmanSRPN(4).route(list(words))

        expected = [(w.address, w.payload) for w in truth]
        for outputs in (bnb_out, batcher_out, bitonic_out, benes_out, koppelman_out):
            assert [(w.address, w.payload) for w in outputs] == expected


class TestThreeBNBImplementations:
    """Object model == numpy model == gate-level netlist."""

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_triple_agreement(self, m):
        n = 1 << m
        net = BNBNetwork(m)
        netlist, ports = build_bnb_netlist(m)
        sampler = PermutationSampler(n, seed=m)
        for distribution in ("uniform", "bpc", "involution"):
            pi = sampler.draw(distribution)
            reference, _ = net.route(pi.to_list())
            fast = net.route_fast(np.array(pi.to_list()))
            gates = ports.decode_outputs(
                netlist.evaluate(ports.input_assignment(pi.to_list()))
            )
            assert [w.address for w in reference] == list(range(n))
            assert fast.tolist() == list(range(n))
            assert gates == list(range(n))


class TestFunctionalVsDES:
    def test_bsn_des_agrees_with_functional(self):
        """Event-driven simulation of the BSN netlist reproduces the
        functional sorter on sampled balanced vectors."""
        from repro.core import BitSorterNetwork
        import random

        k = 3
        netlist = build_bsn_netlist(k)
        sim = GateLevelSimulator(netlist)
        bsn = BitSorterNetwork(k)
        rng = random.Random(2)
        for _ in range(15):
            bits = [1] * 4 + [0] * 4
            rng.shuffle(bits)
            result = sim.run({f"s[{j}]": bits[j] for j in range(8)})
            expected, _ = bsn.route_bits(bits)
            assert [result.outputs[f"o[{j}]"] for j in range(8)] == expected


class TestControlsCrossValidation:
    """Functional splitter controls == netlist control outputs for the
    same nested network, across a whole BNB routing pass."""

    def test_record_controls_match_netlist(self):
        m = 3
        net = BNBNetwork(m)
        pi = random_permutation(8, rng=42)
        _out, record = net.route(pi.to_list(), record=True)
        assert record is not None

        # Rebuild the first nested network's BSN as a netlist and feed
        # it the same key bits; its controls must match the record.
        from repro.hardware import Netlist
        from repro.hardware.bsn_hw import add_bsn

        key_bits = [(pi(j) >> (m - 1)) & 1 for j in range(8)]
        netlist = Netlist("check")
        inputs = [netlist.add_input(f"s[{j}]") for j in range(8)]
        _outputs, controls = add_bsn(netlist, inputs)
        for stage, stage_controls in enumerate(controls):
            for box, control_nets in enumerate(stage_controls):
                for t, net_id in enumerate(control_nets):
                    netlist.mark_output(f"c{stage}_{box}_{t}", net_id)
        values = netlist.evaluate(
            {f"s[{j}]": key_bits[j] for j in range(8)}
        )
        bsn_record = record.nested_records[(0, 0)]
        for (stage, box), splitter_record in bsn_record.splitters.items():
            got = [
                values[f"c{stage}_{box}_{t}"]
                for t in range(len(splitter_record.controls))
            ]
            assert got == splitter_record.controls, (stage, box)


class TestDelayConsistency:
    def test_structural_measurement_vs_closed_form_vs_depths(self):
        for m in (2, 4, 6):
            net = BNBNetwork(m)
            measured = bnb_measured_delay(m)
            assert measured == pytest.approx(bnb_delay(1 << m))
            assert measured == pytest.approx(
                net.switch_stage_depth + net.function_node_depth
            )


class TestEndToEndFabric:
    def test_payload_integrity_large(self):
        """256-port fabric: every payload arrives intact exactly once."""
        m = 8
        net = BNBNetwork(m)
        pi = random_permutation(256, rng=77)
        words = [Word(address=pi(j), payload=j * 1000 + 7) for j in range(256)]
        outputs, _ = net.route(words)
        source_of = pi.inverse()
        for line, word in enumerate(outputs):
            assert word.address == line
            assert word.payload == source_of(line) * 1000 + 7
