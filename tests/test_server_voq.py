"""Virtual output queues: admission, backpressure, fairness."""

import pytest

from repro.exceptions import AdmissionRejectedError
from repro.server import QueueEntry, VirtualOutputQueues


def entry(dest, payload=None, cycle=0):
    return QueueEntry(destination=dest, payload=payload, enqueued_cycle=cycle)


class TestAdmission:
    def test_admit_within_capacity(self):
        voqs = VirtualOutputQueues(8, capacity=3)
        for k in range(3):
            voqs.admit(entry(5, payload=k))
        assert voqs.depth(5) == 3
        assert voqs.accepted == 3
        assert voqs.rejected == 0

    def test_reject_when_full_with_retry_hint(self):
        voqs = VirtualOutputQueues(8, capacity=2)
        voqs.admit(entry(1))
        voqs.admit(entry(1))
        with pytest.raises(AdmissionRejectedError) as excinfo:
            voqs.admit(entry(1))
        assert excinfo.value.destination == 1
        assert excinfo.value.retry_after_cycles == 2
        assert voqs.rejected == 1
        # The bound is per destination: other queues still admit.
        voqs.admit(entry(2))
        assert voqs.depth(2) == 1

    def test_reject_out_of_range(self):
        voqs = VirtualOutputQueues(4, capacity=2)
        with pytest.raises(AdmissionRejectedError):
            voqs.admit(entry(4))
        with pytest.raises(AdmissionRejectedError):
            voqs.admit(entry(-1))
        assert voqs.accepted == 0

    def test_depth_stays_bounded_under_flood(self):
        voqs = VirtualOutputQueues(4, capacity=5)
        admitted = rejected = 0
        for k in range(100):
            try:
                voqs.admit(entry(k % 4, payload=k))
                admitted += 1
            except AdmissionRejectedError:
                rejected += 1
        assert admitted == 20  # 4 queues x capacity 5
        assert rejected == 80
        assert voqs.max_depth == 5


class TestDraining:
    def test_pop_heads_distinct_destinations_fifo(self):
        voqs = VirtualOutputQueues(4, capacity=4)
        for payload, dest in enumerate([2, 2, 3, 3]):
            voqs.admit(entry(dest, payload=payload))
        heads = voqs.pop_heads()
        assert sorted(e.destination for e in heads) == [2, 3]
        # FIFO per destination: first words for 2 and 3 ride first.
        assert sorted(e.payload for e in heads) == [0, 2]
        assert voqs.total == 2

    def test_pop_heads_round_robin_rotates_start(self):
        voqs = VirtualOutputQueues(4, capacity=8)
        for dest in range(4):
            for k in range(2):
                voqs.admit(entry(dest, payload=(dest, k)))
        first = voqs.pop_heads(limit=1)
        second = voqs.pop_heads(limit=1)
        assert first[0].destination != second[0].destination

    def test_requeue_front_preserves_order_and_may_exceed_capacity(self):
        voqs = VirtualOutputQueues(4, capacity=2)
        voqs.admit(entry(0, payload="old0"))
        voqs.admit(entry(0, payload="old1"))
        stranded = [entry(0, payload="inflight0"), entry(0, payload="inflight1")]
        voqs.requeue_front(stranded)
        assert voqs.depth(0) == 4  # transiently above capacity
        assert all(e.requeues == 1 for e in stranded)
        drained = []
        while voqs.total:
            drained.extend(voqs.pop_heads())
        assert [e.payload for e in drained] == [
            "inflight0",
            "inflight1",
            "old0",
            "old1",
        ]
        # New admissions still bounce until the queue drains.
        voqs2 = VirtualOutputQueues(4, capacity=2)
        voqs2.admit(entry(0))
        voqs2.admit(entry(0))
        voqs2.requeue_front([entry(0)])
        with pytest.raises(AdmissionRejectedError):
            voqs2.admit(entry(0))

    def test_drain_all_empties_every_queue(self):
        voqs = VirtualOutputQueues(4, capacity=4)
        for dest in range(4):
            voqs.admit(entry(dest))
        assert len(voqs.drain_all()) == 4
        assert voqs.total == 0


class TestSnapshot:
    def test_snapshot_accounts_offered_accepted_rejected(self):
        voqs = VirtualOutputQueues(2, capacity=1)
        voqs.admit(entry(0))
        with pytest.raises(AdmissionRejectedError):
            voqs.admit(entry(0))
        snap = voqs.snapshot()
        assert snap["offered"] == 2
        assert snap["accepted"] == 1
        assert snap["rejected"] == 1
        assert snap["queued"] == 1
        assert snap["depths"] == [1, 0]

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            VirtualOutputQueues(0, capacity=1)
        with pytest.raises(ValueError):
            VirtualOutputQueues(4, capacity=0)
