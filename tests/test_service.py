"""The resilient fabric service: verify, retry, diagnose, fail over.

Includes the acceptance sweep: for EVERY single stuck-at fault at
m = 3 (all coordinates x both stuck values) the BIST schedule detects
it, the decoder localizes it uniquely, and the service delivers 100%
of the words within its retry budget — degraded or failed over.
"""

import pytest

from repro.core.pipeline import PipelinedBNBFabric, stuck_control_override
from repro.exceptions import (
    FaultServiceError,
    LocalizationAmbiguousError,
    QuarantineExhaustedError,
    RetryBudgetExceededError,
)
from repro.faults import (
    BISTSchedule,
    SwitchCoordinate,
    build_bist_schedule,
    enumerate_switch_coordinates,
    localize,
)
from repro.permutations import random_permutation
from repro.service import (
    FaultRegistry,
    HealthMonitor,
    HealthState,
    ResilientFabric,
    ServiceCounters,
)

M = 3
N = 1 << M
BATCH_SEED = 12345


@pytest.fixture(scope="module")
def schedule():
    return build_bist_schedule(M)


def faulty_pipeline(coordinate, value, m=M):
    return PipelinedBNBFabric(
        m,
        control_override=stuck_control_override(
            coordinate.main_stage,
            coordinate.nested,
            coordinate.nested_stage,
            coordinate.box,
            coordinate.switch,
            value,
        ),
    )


def assert_full_delivery(result, tag, n=N):
    assert result.delivered == n
    assert [w.address for w in result.outputs] == list(range(n))
    assert {w.payload for w in result.outputs} == {
        (tag, j) for j in range(n)
    }


ALL_FAULTS = [
    (coordinate, value)
    for coordinate in enumerate_switch_coordinates(M)
    for value in (0, 1)
]


@pytest.mark.parametrize(
    "coordinate, value",
    ALL_FAULTS,
    ids=[
        f"{c.main_stage}{c.nested}{c.nested_stage}{c.box}{c.switch}s{v}"
        for c, v in ALL_FAULTS
    ],
)
def test_every_single_fault_is_survived(schedule, coordinate, value):
    """The ISSUE acceptance sweep, one fault per test case."""
    fabric = ResilientFabric(
        M, pipeline=faulty_pipeline(coordinate, value), schedule=schedule
    )
    # 1. Live traffic: the batch is fully delivered whatever the mode.
    pi = random_permutation(N, rng=BATCH_SEED)
    result = fabric.submit(pi.to_list(), tag="live")
    assert result.mode in ("clean", "degraded", "failover")
    assert result.retries <= fabric.retry_budget
    assert_full_delivery(result, "live")

    # 2. BIST detects the fault even if live traffic masked it.
    if not fabric.registry.is_quarantined:
        fabric.check(tag="scheduled")
    assert fabric.registry.is_quarantined

    # 3. Localization is unique and names the injected fault.
    assert fabric.registry.confirmed_faults == [(coordinate, value)]

    # 4. Traffic keeps flowing on the spare plane.
    pi2 = random_permutation(N, rng=BATCH_SEED + 1)
    second = fabric.submit(pi2.to_list(), tag="after")
    assert second.mode == "failover"
    assert_full_delivery(second, "after")


class TestHealthyService:
    def test_clean_batches(self, schedule):
        fabric = ResilientFabric(M, schedule=schedule)
        for index in range(3):
            pi = random_permutation(N, rng=index)
            result = fabric.submit(pi.to_list(), tag=index)
            assert result.mode == "clean"
            assert result.retries == 0
            assert_full_delivery(result, index)
        assert fabric.state is HealthState.HEALTHY
        assert fabric.counters.batches_clean == 3
        assert fabric.counters.words_clean == 3 * N

    def test_check_on_healthy_fabric(self, schedule):
        fabric = ResilientFabric(M, schedule=schedule)
        result = fabric.check()
        assert result.candidates == []
        assert fabric.state is HealthState.HEALTHY
        assert fabric.counters.bist_runs == 1

    def test_transient_suspicion_cleared(self, schedule):
        """SUSPECT falls back to HEALTHY when BIST finds nothing."""
        fabric = ResilientFabric(M, schedule=schedule)
        fabric.registry.transition(HealthState.SUSPECT)
        fabric.check(tag="recheck")
        assert fabric.state is HealthState.HEALTHY
        assert fabric.registry.event_kinds().get("cleared") == 1


class TestDegradedAndExhausted:
    # (0,0,0,0,0) stuck-0 with seed 0 needs one repair pass and then
    # delivers on the primary; (0,0,1,1,1) stuck-0 with seed 0 never
    # fully delivers on the primary within the default budget.
    DEGRADED = SwitchCoordinate(0, 0, 0, 0, 0)
    STUBBORN = SwitchCoordinate(0, 0, 1, 1, 1)

    def test_spareless_degraded_delivery(self, schedule):
        fabric = ResilientFabric(
            M,
            pipeline=faulty_pipeline(self.DEGRADED, 0),
            spare=None,
            schedule=schedule,
        )
        result = fabric.submit(
            random_permutation(N, rng=0).to_list(), tag="deg"
        )
        assert result.mode == "degraded"
        assert result.retries >= 1
        assert_full_delivery(result, "deg")
        # Confirmed but not quarantined: nothing to fail over to.
        assert fabric.state is HealthState.CONFIRMED
        assert fabric.counters.batches_degraded == 1
        assert fabric.counters.words_degraded == N

    def test_spareless_retry_budget_exhausted(self, schedule):
        fabric = ResilientFabric(
            M,
            pipeline=faulty_pipeline(self.STUBBORN, 0),
            spare=None,
            schedule=schedule,
        )
        with pytest.raises(RetryBudgetExceededError) as excinfo:
            fabric.submit(random_permutation(N, rng=0).to_list())
        assert excinfo.value.pending >= 1
        assert excinfo.value.retries == fabric.retry_budget

    def test_backoff_is_exponential(self, schedule):
        fabric = ResilientFabric(
            M,
            pipeline=faulty_pipeline(self.STUBBORN, 0),
            spare=None,
            schedule=schedule,
            backoff_base=2,
        )
        with pytest.raises(RetryBudgetExceededError):
            fabric.submit(random_permutation(N, rng=0).to_list())
        # 2<<0 + 2<<1 + 2<<2 + 2<<3 idle cycles across four retries.
        assert fabric.counters.backoff_cycles == 2 + 4 + 8 + 16

    def test_broken_spare_is_exhaustion(self, schedule):
        class BrokenSpare:
            def route(self, words):
                return list(words), None  # leaves words where they sit

        fabric = ResilientFabric(
            M,
            pipeline=faulty_pipeline(self.STUBBORN, 0),
            spare=BrokenSpare(),
            schedule=schedule,
        )
        with pytest.raises(QuarantineExhaustedError, match="misrouted"):
            fabric.submit(random_permutation(N, rng=0).to_list())

    def test_check_after_quarantine_raises(self, schedule):
        fabric = ResilientFabric(
            M, pipeline=faulty_pipeline(self.STUBBORN, 0), schedule=schedule
        )
        fabric.check()
        assert fabric.registry.is_quarantined
        with pytest.raises(QuarantineExhaustedError):
            fabric.check()


class TestStrictLocalization:
    def _thin_case(self, schedule):
        """A (fault, probe) pair whose single-probe evidence is
        ambiguous — exists at m = 3 (14 of 48 faults)."""
        tables = [p.controls for p in schedule.probes]
        for coordinate in enumerate_switch_coordinates(M):
            for value in (0, 1):
                pipeline = faulty_pipeline(coordinate, value)
                observations = schedule.run(
                    lambda words: pipeline.route_batch(words)
                )
                first_dirty = next(
                    i for i, o in enumerate(observations) if not o.clean
                )
                thin = localize(
                    M,
                    [observations[first_dirty]],
                    tables=[tables[first_dirty]],
                )
                if not thin.is_unique:
                    return coordinate, value, first_dirty
        pytest.fail("no ambiguous single-probe fault found at m=3")

    def test_strict_raises_and_lenient_quarantines_class(self, schedule):
        coordinate, value, probe_index = self._thin_case(schedule)
        thin_schedule = BISTSchedule(
            m=M, probes=[schedule.probes[probe_index]]
        )

        strict = ResilientFabric(
            M,
            pipeline=faulty_pipeline(coordinate, value),
            schedule=thin_schedule,
            strict_localization=True,
        )
        with pytest.raises(LocalizationAmbiguousError):
            strict.check()

        lenient = ResilientFabric(
            M,
            pipeline=faulty_pipeline(coordinate, value),
            schedule=thin_schedule,
        )
        lenient.check()
        assert lenient.registry.is_quarantined
        assert (coordinate, value) in lenient.registry.confirmed_faults
        assert len(lenient.registry.confirmed_faults) > 1


class TestRegistry:
    def test_illegal_transition_rejected(self):
        registry = FaultRegistry()
        with pytest.raises(FaultServiceError, match="illegal"):
            registry.transition(HealthState.QUARANTINED)

    def test_self_transition_is_noop(self):
        registry = FaultRegistry()
        registry.transition(HealthState.HEALTHY)
        assert registry.state is HealthState.HEALTHY

    def test_full_lifecycle(self):
        registry = FaultRegistry()
        for state in (
            HealthState.SUSPECT,
            HealthState.CONFIRMED,
            HealthState.QUARANTINED,
        ):
            registry.transition(state)
        assert registry.is_quarantined

    def test_events_fan_out_to_listeners(self):
        registry = FaultRegistry()
        seen = []
        registry.add_listener(seen.append)
        event = registry.emit("detection", "b0", "2 of 8 words misrouted")
        assert seen == [event]
        assert event.sequence == 0
        assert "detection" in str(event)

    def test_counters_as_dict(self):
        counters = ServiceCounters(words_clean=8, words_failover=16)
        assert counters.words_delivered == 24
        assert counters.as_dict()["words_clean"] == 8


class TestHealthMonitor:
    def test_monitor_tracks_service_events(self, schedule):
        fabric = ResilientFabric(
            M,
            pipeline=faulty_pipeline(SwitchCoordinate(0, 0, 1, 1, 1), 0),
            schedule=schedule,
        )
        monitor = HealthMonitor(fabric.registry)
        fabric.submit(random_permutation(N, rng=0).to_list(), tag="b")
        assert monitor.count_of("detection") == 1
        assert monitor.count_of("quarantine") == 1
        assert monitor.last().kind == "delivery"
        assert monitor.event_count == len(fabric.events)
        assert "quarantine" in monitor.render()

    def test_empty_monitor_renders(self):
        assert HealthMonitor().render() == "(no fault events)"


class TestValidation:
    def test_bad_m(self):
        with pytest.raises(ValueError):
            ResilientFabric(0)

    def test_bad_retry_budget(self, schedule):
        with pytest.raises(ValueError):
            ResilientFabric(M, schedule=schedule, retry_budget=-1)

    def test_pipeline_size_mismatch(self, schedule):
        with pytest.raises(ValueError, match="pipeline"):
            ResilientFabric(
                M, pipeline=PipelinedBNBFabric(2), schedule=schedule
            )

    def test_schedule_size_mismatch(self):
        with pytest.raises(ValueError, match="schedule"):
            ResilientFabric(2, schedule=build_bist_schedule(3))
