"""Robustness: random netlists through the optimizer and Verilog round-trip.

Hypothesis builds arbitrary combinational DAGs; the optimizer must
preserve their truth tables exactly and the Verilog emitter/parser pair
must survive whatever structure appears.  These are the tests that
catch the pattern nobody hand-writes.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.hardware import GateType, Netlist, emit_verilog, parse_verilog, sanitize_identifier
from repro.hardware.synthesis import optimize

_UNARY = (GateType.BUF, GateType.NOT)
_BINARY = (
    GateType.AND,
    GateType.OR,
    GateType.XOR,
    GateType.NAND,
    GateType.NOR,
    GateType.XNOR,
)


@st.composite
def random_netlists(draw, max_inputs=4, max_gates=12):
    """An arbitrary combinational netlist with at least one output."""
    input_count = draw(st.integers(1, max_inputs))
    netlist = Netlist("random")
    nets = [netlist.add_input(f"i{j}") for j in range(input_count)]
    gate_count = draw(st.integers(1, max_gates))
    for _ in range(gate_count):
        choice = draw(st.integers(0, 9))
        if choice == 0:
            kind = draw(st.sampled_from((GateType.CONST0, GateType.CONST1)))
            nets.append(netlist.add_gate(kind, ()))
        elif choice <= 3:
            kind = draw(st.sampled_from(_UNARY))
            a = draw(st.sampled_from(nets))
            nets.append(netlist.add_gate(kind, (a,)))
        elif choice <= 8:
            kind = draw(st.sampled_from(_BINARY))
            a = draw(st.sampled_from(nets))
            b = draw(st.sampled_from(nets))
            nets.append(netlist.add_gate(kind, (a, b)))
        else:
            sel = draw(st.sampled_from(nets))
            a = draw(st.sampled_from(nets))
            b = draw(st.sampled_from(nets))
            nets.append(netlist.add_gate(GateType.MUX2, (sel, a, b)))
    output_count = draw(st.integers(1, min(3, len(nets))))
    chosen = draw(
        st.lists(
            st.sampled_from(nets),
            min_size=output_count,
            max_size=output_count,
        )
    )
    for index, net in enumerate(chosen):
        netlist.mark_output(f"o{index}", net)
    return netlist


def truth_table(netlist):
    names = list(netlist.inputs)
    table = []
    for values in itertools.product([0, 1], repeat=len(names)):
        table.append(netlist.evaluate(dict(zip(names, values))))
    return table


class TestOptimizerOnRandomNetlists:
    @settings(max_examples=120, deadline=None)
    @given(random_netlists())
    def test_truth_table_preserved(self, netlist):
        optimized, report = optimize(netlist)
        assert report.gates_after <= report.gates_before
        assert truth_table(optimized) == truth_table(netlist)

    @settings(max_examples=60, deadline=None)
    @given(random_netlists())
    def test_idempotent(self, netlist):
        """Optimizing twice changes nothing further."""
        once, _ = optimize(netlist)
        twice, report = optimize(once)
        assert report.gates_saved == 0 or truth_table(twice) == truth_table(
            netlist
        )
        assert truth_table(twice) == truth_table(netlist)


class TestVerilogOnRandomNetlists:
    @settings(max_examples=80, deadline=None)
    @given(random_netlists())
    def test_round_trip(self, netlist):
        parsed = parse_verilog(emit_verilog(netlist))
        names = list(netlist.inputs)
        for values in itertools.product([0, 1], repeat=len(names)):
            assignment = dict(zip(names, values))
            sanitized = {
                sanitize_identifier(k): v for k, v in assignment.items()
            }
            original = netlist.evaluate(assignment)
            reparsed = parsed.evaluate(sanitized)
            for key, value in original.items():
                assert reparsed[sanitize_identifier(key)] == value
