"""Tests for the cycle-accurate pipelined BNB fabric."""

import pytest

from repro.core import PipelinedBNBFabric
from repro.exceptions import NotAPermutationError
from repro.permutations import random_permutation


class TestBasicOperation:
    def test_single_batch_latency(self):
        """Latency = m + 1 cycles: one to enter, one per main stage."""
        for m in (1, 2, 3, 4):
            fabric = PipelinedBNBFabric(m)
            pi = random_permutation(1 << m, rng=m)
            fabric.offer(pi.to_list(), tag="only")
            completed = fabric.drain()
            assert len(completed) == 1
            tag, outputs = completed[0]
            assert tag == "only"
            assert [w.address for w in outputs] == list(range(1 << m))
            assert fabric.stats().latencies == [m + 1]

    def test_payload_provenance(self):
        fabric = PipelinedBNBFabric(3)
        pi = random_permutation(8, rng=9)
        fabric.offer(pi.to_list(), tag=42)
        (_tag, outputs), = fabric.drain()
        for line, word in enumerate(outputs):
            tag, source = word.payload
            assert tag == 42
            assert pi(source) == line


class TestPipelining:
    def test_back_to_back_batches(self):
        m = 4
        fabric = PipelinedBNBFabric(m)
        perms = [random_permutation(16, rng=s) for s in range(12)]
        completed = []
        for i, pi in enumerate(perms):
            fabric.offer(pi.to_list(), tag=i)
            completed.extend(fabric.step())
        completed.extend(fabric.drain())
        assert [tag for tag, _out in completed] == list(range(12))
        for tag, outputs in completed:
            assert [w.address for w in outputs] == list(range(16))

    def test_steady_state_throughput(self):
        """With the pipe full, one permutation completes per cycle."""
        m = 3
        fabric = PipelinedBNBFabric(m)
        completions_per_cycle = []
        for i in range(30):
            pi = random_permutation(8, rng=100 + i)
            fabric.offer(pi.to_list(), tag=i)
            completions_per_cycle.append(len(fabric.step()))
        # After the m+1-cycle fill, every cycle completes exactly one.
        assert all(c == 1 for c in completions_per_cycle[m + 1 :])
        assert sum(completions_per_cycle[: m + 1]) <= 1

    def test_in_flight_count(self):
        m = 4
        fabric = PipelinedBNBFabric(m)
        for i in range(m):
            fabric.offer(random_permutation(16, rng=i).to_list(), tag=i)
            fabric.step()
        assert fabric.in_flight == m

    def test_bubbles_pass_through(self):
        fabric = PipelinedBNBFabric(3)
        fabric.offer(random_permutation(8, rng=1).to_list(), tag="a")
        fabric.step()
        fabric.step()  # bubble
        fabric.offer(random_permutation(8, rng=2).to_list(), tag="b")
        completed = fabric.drain()
        assert [tag for tag, _out in completed] == ["a", "b"]

    def test_interleaved_batches_do_not_mix(self):
        """Words of different in-flight batches never cross."""
        m = 3
        fabric = PipelinedBNBFabric(m)
        perms = {i: random_permutation(8, rng=300 + i) for i in range(6)}
        completed = []
        for i in range(6):
            fabric.offer(perms[i].to_list(), tag=i)
            completed.extend(fabric.step())
        completed.extend(fabric.drain())
        for tag, outputs in completed:
            for line, word in enumerate(outputs):
                word_tag, source = word.payload
                assert word_tag == tag
                assert perms[tag](source) == line


class TestStatsAndValidation:
    def test_stats(self):
        fabric = PipelinedBNBFabric(2)
        for i in range(5):
            fabric.offer(random_permutation(4, rng=i).to_list(), tag=i)
            fabric.step()
        fabric.drain()
        stats = fabric.stats()
        assert stats.accepted == 5
        assert stats.delivered == 5
        assert stats.fill_latency == 3
        assert 0 < stats.throughput <= 1.0

    def test_double_offer_rejected(self):
        fabric = PipelinedBNBFabric(2)
        fabric.offer([0, 1, 2, 3])
        with pytest.raises(ValueError, match="already waiting"):
            fabric.offer([0, 1, 2, 3])

    def test_non_permutation_rejected(self):
        fabric = PipelinedBNBFabric(2)
        with pytest.raises(NotAPermutationError):
            fabric.offer([0, 0, 1, 2])

    def test_size_validation(self):
        with pytest.raises(ValueError):
            PipelinedBNBFabric(0)
