"""The documentation set stays consistent with the code.

Runs the same checks as ``tools/check_docs.py`` (which CI executes as
a script) under pytest, plus unit tests of the checker's own parsing —
a checker that silently matches nothing would otherwise pass forever.
"""

import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


class TestRepositoryDocs:
    def test_doc_set_is_complete(self):
        names = {path.name for path in check_docs.doc_paths(REPO_ROOT)}
        assert {
            "api_overview.md",
            "complexity_derivations.md",
            "fault_tolerance.md",
            "observability.md",
            "operations.md",
            "paper_map.md",
            "performance.md",
            "serving.md",
            "README.md",
            "CHANGELOG.md",
        } <= names

    def test_cross_links_resolve(self):
        assert check_docs.check_links(REPO_ROOT) == []

    def test_documented_cli_surface_exists(self):
        assert check_docs.check_cli(REPO_ROOT) == []

    def test_cli_surface_reflects_parser(self):
        surface = check_docs.cli_surface()
        assert "serve" in surface and "stats" in surface
        assert "--metrics" in surface["serve"]
        assert "--connect" in surface["stats"]


class TestCheckerParsing:
    def test_extracts_fenced_and_inline_invocations(self):
        text = (
            "Use `repro serve 16 --planes 2` or:\n\n"
            "```console\n"
            "$ repro stats 8 --format prometheus\n"
            "$ python -m repro route 16 --fast\n"
            "from repro import BNBNetwork   # not an invocation\n"
            "```\n\n"
            "Module paths like `repro.core.plan` never match.\n"
        )
        tails = [tail for _ctx, tail in check_docs.extract_invocations(text)]
        assert tails == [
            "stats 8 --format prometheus",
            "route 16 --fast",
            "serve 16 --planes 2",
        ]

    def test_wrapped_inline_span_collapses(self):
        text = "as in `repro serve N --engine\nvector` above"
        [(_ctx, tail)] = check_docs.extract_invocations(text)
        assert tail == "serve N --engine vector"

    def test_token_cleaning(self):
        assert check_docs._clean_tokens(
            "serve N --demo WORDS [--json] | head  # comment"
        ) == ["serve", "N", "--demo", "WORDS", "--json"]
        assert check_docs._clean_tokens("serve 16 --metrics &") == [
            "serve",
            "16",
            "--metrics",
        ]

    def test_detects_dead_link(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text("see [b](missing.md) and [ok](a.md)\n")
        errors = check_docs.check_links(tmp_path)
        assert len(errors) == 1
        assert "missing.md" in errors[0]

    def test_detects_phantom_flag_and_subcommand(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text(
            "run `repro serve 8 --no-such-flag` or `repro frobnicate 8`\n"
        )
        errors = check_docs.check_cli(tmp_path)
        assert len(errors) == 2
        assert any("--no-such-flag" in e for e in errors)
        assert any("frobnicate" in e for e in errors)

    def test_external_links_ignored(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text(
            "[x](https://example.com/y) [y](#anchor) [z](a.md#frag)\n"
        )
        assert check_docs.check_links(tmp_path) == []
