"""Edge cases of the multistage framework not hit by the main suites."""

import pytest

from repro.baselines import BenesNetwork
from repro.permutations import random_permutation
from repro.topology import butterfly_network, flip_network, omega_network


class TestTracingThroughIOWirings:
    def test_omega_trace_includes_input_wiring_hop(self):
        net = omega_network(4)
        _out, traces = net.route_with_controls(
            list("abcd"), net.empty_controls(), trace=True
        )
        assert traces is not None
        # positions: input, after input wiring, then per column/wiring.
        for trace in traces:
            assert len(trace.positions) == 1 + 1 + 2 * net.stage_count - 1

    def test_butterfly_trace_includes_output_wiring_hop(self):
        net = butterfly_network(8)
        _out, traces = net.route_with_controls(
            list(range(8)), net.empty_controls(), trace=True
        )
        assert traces is not None
        for trace in traces:
            # input + columns(3) + wirings(2) + output wiring.
            assert len(trace.positions) == 1 + 3 + 2 + 1

    def test_benes_trace_consistency(self):
        net = BenesNetwork(3)
        pi = random_permutation(8, rng=2)
        controls = net.controls_for(pi)
        outputs, traces = net.fabric.route_with_controls(
            pi.to_list(), controls, trace=True
        )
        assert traces is not None
        for trace in traces:
            assert outputs[trace.output_line] == trace.packet

    def test_realized_permutation_with_io_wirings(self):
        for build in (omega_network, butterfly_network, flip_network):
            net = build(8)
            pi = net.realized_permutation(net.empty_controls())
            # All-straight is pure wiring: composing the wirings of the
            # network must yield the same permutation.
            items = list(range(8))
            routed, _ = net.route_with_controls(items, net.empty_controls())
            assert pi.apply(items) == routed


class TestSelfRouteEdgeCases:
    def test_all_idle(self):
        net = omega_network(4)
        from repro.topology import omega_routing_bit_schedule

        report = net.self_route([None] * 4, omega_routing_bit_schedule(4))
        assert report.delivered  # vacuous delivery
        assert report.outputs == [None] * 4

    def test_controls_recorded_per_stage(self):
        net = omega_network(8)
        from repro.topology import omega_routing_bit_schedule

        report = net.self_route(
            [None] * 7 + [0], omega_routing_bit_schedule(8)
        )
        assert len(report.controls) == net.stage_count
        assert all(len(c) == 4 for c in report.controls)
