"""Unit tests for the Permutation value type."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import NotAPermutationError
from repro.permutations import Permutation, random_permutation


def permutations_st(n=8):
    return st.permutations(list(range(n))).map(Permutation)


class TestConstruction:
    def test_valid(self):
        pi = Permutation([2, 0, 1])
        assert pi(0) == 2 and pi(1) == 0 and pi(2) == 1

    def test_rejects_duplicates(self):
        with pytest.raises(NotAPermutationError):
            Permutation([0, 0, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(NotAPermutationError):
            Permutation([0, 1, 3])
        with pytest.raises(NotAPermutationError):
            Permutation([-1, 0, 1])

    def test_identity(self):
        assert Permutation.identity(4) == Permutation([0, 1, 2, 3])
        assert len(Permutation.identity(0)) == 0

    def test_identity_rejects_negative(self):
        with pytest.raises(ValueError):
            Permutation.identity(-1)

    def test_from_cycles(self):
        pi = Permutation.from_cycles(5, [(0, 1, 2)])
        assert pi.mapping == (1, 2, 0, 3, 4)

    def test_from_cycles_rejects_overlap(self):
        with pytest.raises(ValueError):
            Permutation.from_cycles(4, [(0, 1), (1, 2)])

    def test_from_cycles_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Permutation.from_cycles(3, [(0, 5)])


class TestProtocols:
    def test_sequence_protocol(self):
        pi = Permutation([1, 2, 0])
        assert len(pi) == 3
        assert list(pi) == [1, 2, 0]
        assert pi[1] == 2

    def test_equality_with_sequences(self):
        pi = Permutation([1, 0])
        assert pi == [1, 0]
        assert pi == (1, 0)
        assert pi != [0, 1]

    def test_hashable(self):
        assert len({Permutation([0, 1]), Permutation([0, 1]), Permutation([1, 0])}) == 2

    def test_repr_small_and_large(self):
        assert "Permutation" in repr(Permutation([1, 0]))
        big = Permutation.identity(32)
        assert "n=32" in repr(big)


class TestAlgebra:
    @given(permutations_st())
    def test_inverse_property(self, pi):
        inv = pi.inverse()
        for j in range(len(pi)):
            assert inv(pi(j)) == j
            assert pi(inv(j)) == j

    @given(permutations_st(), permutations_st())
    def test_compose_definition(self, pi, sigma):
        composed = pi * sigma
        for j in range(len(pi)):
            assert composed(j) == pi(sigma(j))

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            Permutation([0, 1]) * Permutation([0, 1, 2])

    @given(permutations_st())
    def test_power_matches_repeated_composition(self, pi):
        assert pi**0 == Permutation.identity(len(pi))
        assert pi**1 == pi
        assert pi**3 == pi * pi * pi
        assert pi**-1 == pi.inverse()

    @given(permutations_st())
    def test_order(self, pi):
        assert pi ** pi.order() == Permutation.identity(len(pi))

    @given(permutations_st(6))
    def test_sign_multiplicative(self, pi):
        assert (pi * pi).sign() == 1

    def test_inversions(self):
        assert Permutation.identity(5).inversions() == 0
        assert Permutation([4, 3, 2, 1, 0]).inversions() == 10


class TestApplication:
    def test_apply_scatter_semantics(self):
        pi = Permutation([2, 0, 1])
        # input j lands on output pi(j)
        assert pi.apply(["a", "b", "c"]) == ["b", "c", "a"]

    def test_permute_positions_gather_semantics(self):
        pi = Permutation([2, 0, 1])
        assert pi.permute_positions(["a", "b", "c"]) == ["c", "a", "b"]

    @given(permutations_st())
    def test_apply_then_inverse_apply(self, pi):
        items = [f"item{j}" for j in range(len(pi))]
        assert pi.inverse().apply(pi.apply(items)) == items

    def test_apply_size_mismatch(self):
        with pytest.raises(ValueError):
            Permutation([0, 1]).apply([1])
        with pytest.raises(ValueError):
            Permutation([0, 1]).permute_positions([1, 2, 3])


class TestCycles:
    def test_cycles_cover_all_points(self):
        pi = random_permutation(32, rng=7)
        covered = sorted(point for cycle in pi.cycles() for point in cycle)
        assert covered == list(range(32))

    def test_cycle_content(self):
        pi = Permutation([1, 0, 2, 4, 3])
        assert pi.cycles() == [(0, 1), (2,), (3, 4)]

    @given(permutations_st())
    def test_cycles_consistent_with_mapping(self, pi):
        for cycle in pi.cycles():
            for i, point in enumerate(cycle):
                assert pi(point) == cycle[(i + 1) % len(cycle)]
