"""Logic-optimizer tests: behaviour preserved, junk removed."""

import itertools

import pytest

from repro.hardware import (
    GateType,
    Netlist,
    build_arbiter_netlist,
    build_bsn_netlist,
    build_function_node,
    build_splitter_netlist,
    build_switch_cell,
)
from repro.hardware.synthesis import optimize


def assert_equivalent(original: Netlist, optimized: Netlist, max_cases=256):
    names = list(original.inputs)
    cases = itertools.product([0, 1], repeat=len(names))
    for count, values in enumerate(cases):
        if count >= max_cases:
            break
        assignment = dict(zip(names, values))
        assert optimized.evaluate(assignment) == original.evaluate(assignment)


class TestBehaviourPreservation:
    @pytest.mark.parametrize(
        "builder",
        [
            build_function_node,
            build_switch_cell,
            lambda: build_arbiter_netlist(2),
            lambda: build_splitter_netlist(2),
            lambda: build_bsn_netlist(2),
        ],
    )
    def test_library_cells_unchanged_behaviour(self, builder):
        original = builder()
        optimized, report = optimize(original)
        assert_equivalent(original, optimized)
        assert report.gates_after <= report.gates_before


class TestConstantFolding:
    def test_folds_through_logic(self):
        netlist = Netlist("fold")
        a = netlist.add_input("a")
        one = netlist.add_gate(GateType.CONST1, ())
        zero = netlist.add_gate(GateType.CONST0, ())
        and_gate = netlist.add_gate(GateType.AND, (one, zero))  # = 0
        or_gate = netlist.add_gate(GateType.OR, (and_gate, a))  # = a... via gates
        netlist.mark_output("y", or_gate)
        optimized, report = optimize(netlist)
        assert report.folded_constants >= 1
        assert_equivalent(netlist, optimized)

    def test_fully_constant_output(self):
        netlist = Netlist("const")
        a = netlist.add_input("a")
        one = netlist.add_gate(GateType.CONST1, ())
        y = netlist.add_gate(GateType.OR, (a, one))  # always 1... not folded
        z = netlist.add_gate(GateType.XOR, (one, one))  # folds to 0
        netlist.mark_output("y", y)
        netlist.mark_output("z", z)
        optimized, _report = optimize(netlist)
        assert optimized.evaluate({"a": 0})["z"] == 0
        assert_equivalent(netlist, optimized)

    def test_mux_with_constant_select(self):
        netlist = Netlist("muxsel")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        one = netlist.add_gate(GateType.CONST1, ())
        y = netlist.add_gate(GateType.MUX2, (one, a, b))  # selects b
        netlist.mark_output("y", y)
        optimized, _report = optimize(netlist)
        assert_equivalent(netlist, optimized)
        # The mux is gone; at most a constant survives alongside nothing.
        assert GateType.MUX2 not in optimized.gate_census()


class TestCollapsing:
    def test_buffer_chain(self):
        netlist = Netlist("bufchain")
        a = netlist.add_input("a")
        b1 = netlist.add_gate(GateType.BUF, (a,))
        b2 = netlist.add_gate(GateType.BUF, (b1,))
        netlist.mark_output("y", b2)
        optimized, report = optimize(netlist)
        assert report.collapsed_buffers == 2
        assert optimized.gate_count == 0 or optimized.gate_census().get(
            GateType.BUF, 0
        ) == 0
        assert_equivalent(netlist, optimized)

    def test_double_inverter(self):
        netlist = Netlist("dblnot")
        a = netlist.add_input("a")
        n1 = netlist.add_gate(GateType.NOT, (a,))
        n2 = netlist.add_gate(GateType.NOT, (n1,))
        y = netlist.add_gate(GateType.AND, (n2, a))
        netlist.mark_output("y", y)
        optimized, report = optimize(netlist)
        assert report.collapsed_buffers >= 1
        assert_equivalent(netlist, optimized)
        # n1 becomes dead once n2 forwards to a.
        assert optimized.gate_census().get(GateType.NOT, 0) == 0

    def test_mux_same_branches(self):
        netlist = Netlist("muxsame")
        s = netlist.add_input("s")
        a = netlist.add_input("a")
        y = netlist.add_gate(GateType.MUX2, (s, a, a))
        netlist.mark_output("y", y)
        optimized, _report = optimize(netlist)
        assert GateType.MUX2 not in optimized.gate_census()
        assert_equivalent(netlist, optimized)


class TestDeadCode:
    def test_unused_cone_removed(self):
        netlist = Netlist("dead")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        used = netlist.add_gate(GateType.AND, (a, b))
        _unused = netlist.add_gate(GateType.XOR, (a, b))
        netlist.mark_output("y", used)
        optimized, report = optimize(netlist)
        assert report.removed_dead == 1
        assert optimized.gate_count == 1
        assert_equivalent(netlist, optimized)
