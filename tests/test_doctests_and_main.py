"""Executable documentation: doctests and the ``python -m repro`` entry."""

import doctest
import subprocess
import sys

import pytest

import repro


class TestDoctests:
    def test_package_doctest(self):
        """The quickstart in the package docstring must actually work."""
        results = doctest.testmod(repro, verbose=False)
        assert results.attempted >= 3
        assert results.failed == 0


class TestModuleEntry:
    def test_python_dash_m(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "tables", "64"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "Table 1" in completed.stdout
        assert "This paper" in completed.stdout

    def test_python_dash_m_route(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "route", "8", "--seed", "5"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "delivered: True" in completed.stdout

    def test_python_dash_m_bad_command(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "explode"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode != 0
