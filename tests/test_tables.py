"""Tests for the Table 1 / Table 2 renderers."""

import pytest

from repro.analysis.tables import (
    TABLE1_LEADING_TERMS,
    TABLE2_POLYNOMIALS,
    format_table,
    render_table1,
    render_table2,
    table1_values,
    table2_values,
)


class TestTable1Values:
    def test_rows_and_networks(self):
        rows = table1_values(64)
        assert [r["network"] for r in rows] == [
            "Batcher",
            "Koppelman[11]",
            "This paper",
        ]

    def test_batcher_ratio_is_one(self):
        rows = table1_values(256)
        assert rows[0]["vs Batcher"] == 1.0

    def test_totals_consistent(self):
        for row in table1_values(128, w=8):
            assert row["total"] == (
                row["2x2 switches"] + row["function slices"] + row["adder slices"]
            )

    def test_bnb_wins_asymptotically_on_total(self):
        small = table1_values(64)
        large = table1_values(1 << 14)
        bnb_small = small[2]["vs Batcher"]
        bnb_large = large[2]["vs Batcher"]
        assert bnb_large < bnb_small


class TestTable2Values:
    def test_bnb_printed_equals_full(self):
        rows = table2_values(256)
        bnb = rows[2]
        assert bnb["printed polynomial"] == pytest.approx(bnb["full equation"])

    def test_batcher_printed_below_full(self):
        """The documented Table 2 quirk: printed Batcher row omits the
        switch term."""
        rows = table2_values(256)
        batcher = rows[0]
        assert batcher["printed polynomial"] < batcher["full equation"]

    def test_bnb_is_fastest_at_n1024(self):
        rows = table2_values(1024)
        delays = {r["network"]: r["full equation"] for r in rows}
        assert delays["This paper"] < delays["Koppelman[11]"]
        assert delays["This paper"] < delays["Batcher"]


class TestRenderers:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": 22}, {"a": 333, "bb": 4}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_format_empty(self):
        assert "empty" in format_table([])

    def test_render_table1_contains_terms(self):
        text = render_table1(64)
        for terms in TABLE1_LEADING_TERMS.values():
            assert terms["2x2 switches"] in text

    def test_render_table2_contains_polynomials(self):
        text = render_table2(64)
        for poly in TABLE2_POLYNOMIALS.values():
            assert poly in text

    def test_power_of_two_enforced(self):
        with pytest.raises(Exception):
            table1_values(12)
        with pytest.raises(Exception):
            table2_values(12)
