"""Golden-value regression guard.

``tests/data/golden_counts.json`` snapshots every headline quantity for
``N = 2 .. 4096``.  Any change to the cost/delay code that shifts a
single number — even by one switch — fails here with a precise diff,
independent of the algebraic cross-checks (which could, in principle,
all drift together if a shared helper changed meaning).
"""

import json
import pathlib

import pytest

from repro.analysis.complexity import (
    batcher_comparators,
    batcher_delay,
    batcher_switch_slices,
    bnb_delay,
    bnb_function_nodes,
    bnb_switch_slices,
    koppelman_delay_table2,
    koppelman_switch_slices,
)

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_counts.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_file_covers_all_sizes(golden):
    assert sorted(int(n) for n in golden) == [1 << m for m in range(1, 13)]


def test_every_quantity_matches(golden):
    mismatches = []
    for n_text, expected in golden.items():
        n = int(n_text)
        actual = {
            "bnb_switches_w0": bnb_switch_slices(n, 0),
            "bnb_switches_w16": bnb_switch_slices(n, 16),
            "bnb_function_nodes": bnb_function_nodes(n),
            "bnb_delay": bnb_delay(n),
            "batcher_comparators": batcher_comparators(n),
            "batcher_switches_w16": batcher_switch_slices(n, 16),
            "batcher_delay": batcher_delay(n),
            "koppelman_switches": koppelman_switch_slices(n),
            "koppelman_delay": koppelman_delay_table2(n),
        }
        for key, value in expected.items():
            if actual[key] != value:
                mismatches.append((n, key, value, actual[key]))
    assert not mismatches, mismatches


def test_structural_counts_match_golden(golden):
    """The constructed networks hit the same snapshot (spot sizes)."""
    from repro.baselines import BatcherNetwork
    from repro.core import BNBNetwork

    for m in (3, 6, 9):
        n = 1 << m
        expected = golden[str(n)]
        assert BNBNetwork(m).switch_count == expected["bnb_switches_w0"]
        assert BNBNetwork(m).function_node_count == expected["bnb_function_nodes"]
        assert BatcherNetwork(m).comparator_count == expected["batcher_comparators"]
