"""Unit tests for the generic multistage network framework."""

import pytest

from repro.exceptions import PathConflictError
from repro.permutations import Permutation
from repro.topology import (
    MultistageNetwork,
    baseline_network,
    baseline_routing_bit_schedule,
    identity_connection,
    perfect_shuffle_connection,
)


def tiny_network():
    """A 4-line, 2-stage network with a shuffle between the stages."""
    return MultistageNetwork(
        n=4,
        stage_count=2,
        wirings=[perfect_shuffle_connection(4)],
        name="tiny",
    )


class TestConstruction:
    def test_counts(self):
        net = tiny_network()
        assert net.stage_count == 2
        assert net.switch_count == 4
        assert net.depth == 2
        assert net.controls_shape() == [2, 2]

    def test_wiring_count_validation(self):
        with pytest.raises(ValueError):
            MultistageNetwork(4, 2, wirings=[])

    def test_wiring_permutation_validation(self):
        with pytest.raises(ValueError):
            MultistageNetwork(4, 2, wirings=[[0, 0, 1, 2]])

    def test_io_wiring_validation(self):
        with pytest.raises(ValueError):
            MultistageNetwork(
                4, 1, wirings=[], input_wiring=[0, 1]
            )

    def test_needs_a_stage(self):
        with pytest.raises(ValueError):
            MultistageNetwork(4, 0, wirings=[])


class TestExplicitRouting:
    def test_all_straight_is_wiring_only(self):
        net = tiny_network()
        out, _ = net.route_with_controls(list("abcd"), net.empty_controls())
        # Only the shuffle moves things: a->0, b->2, c->1, d->3.
        assert out == ["a", "c", "b", "d"]

    def test_trace_positions(self):
        net = tiny_network()
        _out, traces = net.route_with_controls(
            list("abcd"), [[1, 0], [0, 0]], trace=True
        )
        assert traces is not None
        trace_a = traces[0]
        assert trace_a.packet == "a"
        assert trace_a.input_line == 0
        # a exchanges to line 1, shuffles to line 2, stays.
        assert trace_a.positions == (0, 1, 2, 2)

    def test_realized_permutation_matches_route(self):
        net = tiny_network()
        controls = [[1, 1], [0, 1]]
        pi = net.realized_permutation(controls)
        items = list("wxyz")
        routed, _ = net.route_with_controls(items, controls)
        assert pi.apply(items) == routed

    def test_control_shape_validation(self):
        net = tiny_network()
        with pytest.raises(ValueError):
            net.route_with_controls(list("abcd"), [[0, 0]])
        with pytest.raises(ValueError):
            net.route_with_controls(list("abc"), net.empty_controls())


class TestSelfRouting:
    def test_baseline_routes_routable_permutation(self):
        net = baseline_network(8)
        schedule = baseline_routing_bit_schedule(8)
        from repro.permutations import bit_reversal

        report = net.self_route(bit_reversal(3).to_list(), schedule)
        assert report.delivered
        assert report.conflict_count == 0
        assert report.outputs == list(range(8))

    def test_conflict_reported_not_raised(self):
        net = baseline_network(4)
        schedule = baseline_routing_bit_schedule(4)
        report = net.self_route([0, 1, 2, 3], schedule)  # identity blocks
        assert not report.delivered
        assert report.conflict_count > 0

    def test_strict_mode_raises(self):
        net = baseline_network(4)
        schedule = baseline_routing_bit_schedule(4)
        with pytest.raises(PathConflictError):
            net.self_route([0, 1, 2, 3], schedule, strict=True)

    def test_idle_lines_allowed(self):
        net = baseline_network(4)
        schedule = baseline_routing_bit_schedule(4)
        report = net.self_route([2, None, None, 1], schedule)
        assert report.outputs[2] == 2
        assert report.outputs[1] == 1

    def test_schedule_length_validation(self):
        net = baseline_network(4)
        with pytest.raises(ValueError):
            net.self_route([0, 1, 2, 3], [1])
        with pytest.raises(ValueError):
            net.self_route([0, 1], baseline_routing_bit_schedule(4))
