"""Measured structural delays vs the paper's delay equations."""

import pytest

from repro.analysis.complexity import batcher_delay, bnb_delay
from repro.analysis.delay import (
    batcher_measured_delay,
    bnb_measured_delay,
    bsn_measured_delay,
)


class TestBSNDelay:
    def test_small_values(self):
        # k=1: one sp(1): just a switch.
        assert bsn_measured_delay(1) == 1.0
        # k=2: sp(2) (2*2 fn + sw) then sp(1) (sw): 4 + 1 + 1 = 6.
        assert bsn_measured_delay(2) == 6.0

    def test_closed_form(self):
        """BSN delay = sum_{p=2}^{k} 2p * D_FN + k * D_SW."""
        for k in range(1, 10):
            expected = sum(2 * p for p in range(2, k + 1)) + k
            assert bsn_measured_delay(k) == expected

    def test_unit_scaling(self):
        assert bsn_measured_delay(3, d_sw=0, d_fn=1) == 10.0
        assert bsn_measured_delay(3, d_sw=1, d_fn=0) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bsn_measured_delay(0)


class TestBNBDelay:
    @pytest.mark.parametrize("m", list(range(1, 12)))
    def test_matches_eq9_exactly(self, m):
        assert bnb_measured_delay(m) == pytest.approx(bnb_delay(1 << m))

    @pytest.mark.parametrize("d_sw,d_fn", [(1.0, 1.0), (2.0, 0.5), (0.0, 1.0)])
    def test_matches_eq9_under_technology_scaling(self, d_sw, d_fn):
        for m in range(1, 8):
            assert bnb_measured_delay(m, d_sw, d_fn) == pytest.approx(
                bnb_delay(1 << m, d_sw, d_fn)
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            bnb_measured_delay(0)


class TestBatcherDelay:
    @pytest.mark.parametrize("m", list(range(1, 11)))
    def test_matches_eq12_exactly(self, m):
        assert batcher_measured_delay(m) == pytest.approx(batcher_delay(1 << m))

    def test_m0_trivial(self):
        assert batcher_measured_delay(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            batcher_measured_delay(-1)


class TestComparison:
    def test_bnb_faster_beyond_crossover(self):
        """BNB's measured delay beats Batcher's at every size (the
        leading-term claim shows up immediately because Batcher's
        m^3/2 coefficient dominates already at m=1..2)."""
        for m in range(2, 12):
            assert bnb_measured_delay(m) < batcher_measured_delay(m)
