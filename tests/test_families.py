"""Unit tests for the named permutation families."""

import pytest

from repro.bits import bit_reverse, rotate_left
from repro.permutations import (
    FAMILY_BUILDERS,
    Permutation,
    bit_reversal,
    bpc,
    butterfly,
    cyclic_shift,
    exchange,
    family,
    identity,
    inverse_shuffle,
    matrix_transpose,
    perfect_shuffle,
    reversal,
    transposition,
    vector_reversal_family,
)
from repro.permutations.properties import is_bpc, is_involution


class TestBasicFamilies:
    def test_identity(self):
        assert identity(3).mapping == tuple(range(8))

    def test_reversal(self):
        assert reversal(2).mapping == (3, 2, 1, 0)

    def test_reversal_is_bpc(self):
        assert is_bpc(reversal(4))

    def test_bit_reversal_values(self):
        pi = bit_reversal(3)
        for j in range(8):
            assert pi(j) == bit_reverse(j, 3)

    def test_bit_reversal_involution(self):
        assert is_involution(bit_reversal(5))

    def test_perfect_shuffle(self):
        pi = perfect_shuffle(3)
        for j in range(8):
            assert pi(j) == rotate_left(j, 3)

    def test_shuffle_inverse_pair(self):
        m = 4
        assert perfect_shuffle(m) * inverse_shuffle(m) == identity(m)

    def test_exchange(self):
        pi = exchange(3)
        assert pi(0) == 1 and pi(1) == 0 and pi(6) == 7

    def test_butterfly_default_swaps_msb_lsb(self):
        pi = butterfly(3)
        assert pi(0b100) == 0b001
        assert pi(0b101) == 0b101

    def test_butterfly_specific_bit(self):
        pi = butterfly(4, k=2)
        assert pi(0b0100) == 0b0001

    def test_cyclic_shift(self):
        pi = cyclic_shift(2, 1)
        assert pi.mapping == (1, 2, 3, 0)

    def test_transposition(self):
        pi = transposition(2, 0, 3)
        assert pi.mapping == (3, 1, 2, 0)


class TestBPC:
    def test_identity_sigma_no_complement(self):
        assert bpc(3, [0, 1, 2]) == identity(3)

    def test_complement_only_is_xor(self):
        pi = bpc(3, [0, 1, 2], 0b101)
        for j in range(8):
            assert pi(j) == j ^ 0b101

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            bpc(3, [0, 1, 1])

    def test_rejects_bad_complement(self):
        with pytest.raises(ValueError):
            bpc(3, [0, 1, 2], 8)

    def test_matrix_transpose_is_bpc(self):
        pi = matrix_transpose(4)
        assert is_bpc(pi)
        # row-major (r, c) -> (c, r): index r*4+c maps to c*4+r
        for r in range(4):
            for c in range(4):
                assert pi(r * 4 + c) == c * 4 + r

    def test_matrix_transpose_rejects_odd_m(self):
        with pytest.raises(ValueError):
            matrix_transpose(3)

    def test_vector_reversal_family(self):
        family_perms = vector_reversal_family(3)
        assert len(family_perms) == 3
        # k=1 member flips the LSB: the exchange permutation.
        assert family_perms[0] == exchange(3)
        # k=m member reverses everything.
        assert family_perms[-1] == reversal(3)


class TestRegistry:
    def test_family_lookup(self):
        assert family("bit_reversal", 3) == bit_reversal(3)

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            family("nope", 3)

    def test_all_builders_produce_permutations(self):
        for name, builder in FAMILY_BUILDERS.items():
            m = 4  # even, so matrix_transpose works too
            pi = builder(m)
            assert isinstance(pi, Permutation)
            assert len(pi) == 16, name
