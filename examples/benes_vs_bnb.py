#!/usr/bin/env python3
"""Why self-routing: Benes vs restricted self-routing vs BNB.

The paper's introduction in executable form.  Three ways to realize
permutations on log-stage fabrics:

1. **Benes + looping** — cheapest hardware (O(N log N) switches) but a
   global setup computation per permutation;
2. **bit-controlled self-routing on Benes** (Nassimi-Sahni style) — no
   setup, but only a restricted class (BPC and friends) routes;
3. **BNB** — more hardware (O(N log^3 N)), zero setup, *all* N!
   permutations.

This example measures each on the same workloads: what fraction of
random traffic each can carry, and what the Benes setup costs in
software time compared to BNB's self-routing pass.

Run:  python examples/benes_vs_bnb.py
"""

import time

from repro import BenesNetwork, BNBNetwork, NassimiSahniRouter
from repro.analysis.complexity import bnb_switch_slices
from repro.baselines import benes_switch_count
from repro.permutations import random_bpc, random_permutation


def routable_fractions() -> None:
    print("Fraction of random workloads each router can realize:")
    print(" N    router              uniform perms   BPC perms")
    for m in (3, 4, 5):
        n = 1 << m
        ns = NassimiSahniRouter(m)
        uniform = sum(
            ns.can_route(random_permutation(n, rng=s)) for s in range(200)
        ) / 200
        bpc_frac = sum(
            ns.can_route(random_bpc(n, rng=s)) for s in range(200)
        ) / 200
        print(f" {n:<4} NS self-routing    {uniform:13.3f}   {bpc_frac:9.3f}")
        print(f" {n:<4} Benes (looping)    {1.0:13.3f}   {1.0:9.3f}")
        print(f" {n:<4} BNB self-routing   {1.0:13.3f}   {1.0:9.3f}")
    print()


def setup_cost() -> None:
    print("Software cost per permutation (setup + route), N = 256:")
    m = 8
    n = 1 << m
    benes = BenesNetwork(m)
    bnb = BNBNetwork(m)
    workload = [random_permutation(n, rng=s).to_list() for s in range(20)]

    start = time.perf_counter()
    for addresses in workload:
        benes.route(addresses)
    benes_time = (time.perf_counter() - start) / len(workload)

    start = time.perf_counter()
    for addresses in workload:
        bnb.route(addresses)
    bnb_time = (time.perf_counter() - start) / len(workload)

    print(f"  Benes looping + route : {benes_time * 1e3:7.2f} ms/permutation")
    print(f"  BNB self-route        : {bnb_time * 1e3:7.2f} ms/permutation")
    print(
        "  (in hardware the gap is starker: the looping algorithm is an\n"
        "   inherently sequential/parallel-prefix computation over the whole\n"
        "   permutation, while BNB's decisions are purely local)\n"
    )


def hardware_bill() -> None:
    print("Hardware bill (2x2 switch slices, w = 0):")
    print(" N      Benes      BNB      ratio")
    for m in (4, 6, 8, 10, 12):
        n = 1 << m
        benes = benes_switch_count(n)
        bnb = bnb_switch_slices(n)
        print(f" {n:<6} {benes:>8} {bnb:>9} {bnb / benes:8.1f}x")
    print(
        "\nThe BNB pays O(log^2 N) more switches to eliminate the global\n"
        "setup entirely — the trade the paper argues is worth making."
    )


def main() -> None:
    routable_fractions()
    setup_cost()
    hardware_bill()


if __name__ == "__main__":
    main()
