#!/usr/bin/env python3
"""Export the paper's hardware as structural Verilog.

Emits synthesizable structural Verilog for the Fig. 5 function node,
an arbiter, a splitter, a bit-sorter network and a complete 8-input
BNB network, then re-imports each module with the library's own
Verilog parser and proves behavioural equivalence — so the generated
RTL provably computes what the Python models compute.

Run:  python examples/verilog_export.py [output_dir]
"""

import pathlib
import sys

from repro.hardware import (
    build_arbiter_netlist,
    build_bnb_netlist,
    build_bsn_netlist,
    build_function_node,
    build_splitter_netlist,
    emit_verilog,
    parse_verilog,
    sanitize_identifier,
)
from repro.permutations import random_permutation


def export_and_verify(netlist, directory: pathlib.Path) -> pathlib.Path:
    text = emit_verilog(netlist)
    path = directory / f"{netlist.name}.v"
    path.write_text(text + "\n")

    # Round-trip: the re-imported module must agree on a probe vector.
    parsed = parse_verilog(text)
    probe = {name: (i * 7 + 1) % 2 for i, name in enumerate(netlist.inputs)}
    original = netlist.evaluate(probe)
    sanitized_probe = {sanitize_identifier(k): v for k, v in probe.items()}
    reparsed = parsed.evaluate(sanitized_probe)
    for name, value in original.items():
        assert reparsed[sanitize_identifier(name)] == value, name
    return path


def main() -> None:
    directory = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(
        "verilog_out"
    )
    directory.mkdir(exist_ok=True)

    modules = [
        build_function_node(),
        build_arbiter_netlist(3),
        build_splitter_netlist(3),
        build_bsn_netlist(3),
    ]
    for netlist in modules:
        path = export_and_verify(netlist, directory)
        print(
            f"wrote {path}  ({netlist.gate_count} gates, "
            f"depth {netlist.critical_path_length()}) — round-trip verified"
        )

    bnb_netlist, ports = build_bnb_netlist(3)
    path = directory / f"{bnb_netlist.name}.v"
    path.write_text(emit_verilog(bnb_netlist) + "\n")
    # Behavioural spot check through the parser on a permutation.
    parsed = parse_verilog(emit_verilog(bnb_netlist))
    pi = random_permutation(8, rng=1)
    assignment = ports.input_assignment(pi.to_list())
    sanitized = {sanitize_identifier(k): v for k, v in assignment.items()}
    outputs = parsed.evaluate(sanitized)
    decoded = [
        sum(
            outputs[sanitize_identifier(ports.address_outputs[j][b])]
            << (3 - 1 - b)
            for b in range(3)
        )
        for j in range(8)
    ]
    assert decoded == list(range(8))
    print(
        f"wrote {path}  ({bnb_netlist.gate_count} gates) — routed "
        f"{pi.to_list()} correctly through the re-imported RTL"
    )
    print(f"\nAll modules in {directory}/ are plain structural Verilog-2001.")


if __name__ == "__main__":
    main()
