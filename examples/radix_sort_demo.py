#!/usr/bin/env python3
"""The BNB network as a hardware radix sorter.

The BNB network *is* an MSB-first binary radix sort laid out in
hardware: main stage i partitions every block on address bit b^i and
the unshuffle connections gather the halves.  This example makes the
sorting interpretation explicit:

1. it sorts records by key using the network (keys = permutation of
   0..N-1, as in the paper's model);
2. it visualizes, stage by stage, how the key bits become sorted; and
3. it contrasts the BNB's one-bit splitters with Batcher's full-word
   comparators on the same workload — the heart of the paper's
   hardware savings.

Run:  python examples/radix_sort_demo.py
"""

from repro import BatcherNetwork, BNBNetwork, Word
from repro.permutations import random_permutation


def show_stage_progression(m: int, seed: int) -> None:
    network = BNBNetwork(m)
    n = network.n
    pi = random_permutation(n, rng=seed)
    words = [Word(address=pi(j), payload=j) for j in range(n)]
    _outputs, record = network.route(words, record=True)
    assert record is not None

    print(f"MSB-first radix sort of {pi.to_list()}")
    addresses = [w.address for w in words]
    print(f"  input     : {addresses}")
    for stage, arrangement in enumerate(record.stage_outputs):
        values = [words[idx].address for idx in arrangement]
        bits = "".join(str((v >> (m - 1 - stage)) & 1) for v in values)
        print(f"  stage {stage} out: {values}   bit b^{stage} pattern: {bits}")
    print(f"  (after each stage the routed bit alternates 0101... per block,")
    print(f"   and the following unshuffle groups equal bits together)")
    print()


def compare_decision_hardware(m: int) -> None:
    bnb = BNBNetwork(m)
    batcher = BatcherNetwork(m)
    n = bnb.n
    print(f"Decision hardware for N = {n}:")
    print(
        f"  BNB     : {bnb.function_node_count} one-bit function nodes "
        f"(each looks at 2 bits + 1 flag)"
    )
    print(
        f"  Batcher : {batcher.comparator_count} comparators x {m}-bit "
        f"compares = {batcher.function_slice_count} function slices"
    )
    ratio = bnb.function_node_count / batcher.function_slice_count
    print(f"  BNB uses {ratio:.2f}x the decision logic — the payoff of")
    print(f"  radix-sorting one bit per stage instead of comparing words.\n")


def main() -> None:
    show_stage_progression(m=3, seed=5)
    show_stage_progression(m=4, seed=9)
    for m in (4, 6, 8, 10):
        compare_decision_hardware(m)


if __name__ == "__main__":
    main()
