#!/usr/bin/env python3
"""A packet-switch fabric built on the BNB network.

The paper motivates permutation networks as switching fabrics for
communication systems: N input ports each hold one packet per cycle,
packets carry (destination, payload) words of q = m + w bits, and the
fabric must deliver any permutation of destinations conflict-free.

This example runs a 64-port fabric for many cycles of random
permutation traffic, carries realistic payloads, measures aggregate
throughput, and demonstrates the follower-slice economics: the data
width w changes the hardware bill (Eq. 6) but not the routing logic.

Run:  python examples/switch_fabric.py
"""

import time

from repro import BNBNetwork, Word
from repro.analysis.complexity import bnb_switch_slices
from repro.permutations import PermutationSampler


def run_traffic(network: BNBNetwork, cycles: int, sampler: PermutationSampler):
    delivered = 0
    start = time.perf_counter()
    for cycle in range(cycles):
        pi = sampler.draw("uniform")
        packets = [
            Word(address=pi(port), payload=(cycle, port, f"payload-{cycle}-{port}"))
            for port in range(network.n)
        ]
        outputs, _ = network.route(packets)
        for line, packet in enumerate(outputs):
            assert packet.address == line
            _cycle, source, _body = packet.payload
            assert pi(source) == line
        delivered += network.n
    elapsed = time.perf_counter() - start
    return delivered, elapsed


def main() -> None:
    m, w = 6, 32  # 64 ports, 32-bit payloads
    network = BNBNetwork(m, w=w)
    sampler = PermutationSampler(network.n, seed=7)

    print(f"64-port BNB switch fabric, q = {m} + {w} bit words")
    print(f"  hardware: {network.switch_count} switch slices "
          f"({network.function_node_count} function nodes)")
    print(f"  delay: {network.propagation_delay():.0f} gate units per cycle\n")

    cycles = 200
    delivered, elapsed = run_traffic(network, cycles, sampler)
    print(f"Ran {cycles} cycles of uniform permutation traffic:")
    print(f"  {delivered} packets delivered, 0 misrouted")
    print(f"  software model throughput: {delivered / elapsed:,.0f} packets/s\n")

    # The cost of payload width: routing is unchanged, hardware is not.
    print("Payload width vs hardware (Eq. 6), N = 64:")
    for width in (0, 8, 16, 32, 64):
        print(f"  w = {width:>2}: {bnb_switch_slices(64, width):>6} switch slices")


if __name__ == "__main__":
    main()
