#!/usr/bin/env python3
"""An input-queued packet switch around the BNB fabric.

Runs the packet-level simulation at increasing offered load under two
queueing disciplines and prints the throughput/latency curves — showing
the famous head-of-line blocking wall near 58.6% for FIFO queues, and
how virtual output queues (VOQ) push it back to ~full load.  Every
delivered packet physically traverses a BNB routing pass.

Run:  python examples/input_queued_switch.py
"""

from repro.sim import SwitchSimulator


def sweep(mode: str, loads, cycles: int = 400) -> None:
    print(f"{mode.upper()} input queues (N = 16 ports, {cycles} cycles/point):")
    print("  load   throughput   mean latency   max queue")
    for load in loads:
        stats = SwitchSimulator(4, mode=mode, seed=99).run(cycles, load)
        print(
            f"  {load:4.2f}   {stats.throughput:10.3f}   "
            f"{stats.mean_latency:12.2f}   {stats.max_queue_depth:9d}"
        )
    print()


def main() -> None:
    loads = (0.2, 0.4, 0.5, 0.58, 0.7, 0.85, 1.0)
    sweep("fifo", loads)
    sweep("voq", loads)
    print(
        "Reading: FIFO tracks the offered load until ~0.58, then head-of-\n"
        "line blocking flattens throughput and latency/queues diverge.\n"
        "VOQ (one virtual queue per output + maximal matching) removes the\n"
        "blocking and keeps carrying traffic to ~full load.  The fabric is\n"
        "never the bottleneck — a BNB pass delivers any conflict-free\n"
        "selection in one cycle (Theorem 2)."
    )


if __name__ == "__main__":
    main()
