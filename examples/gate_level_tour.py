#!/usr/bin/env python3
"""A gate-level tour of the BNB network.

Walks the hardware stack bottom-up, the way Section 4 of the paper
builds it:

1. the function node (Fig. 5) — 4 gates, truth table printed;
2. the arbiter A(3) — XOR tree up, flags down, traced on live inputs;
3. the splitter sp(3) (Fig. 4) — netlist vs functional model;
4. a complete 16-input BNB netlist — evaluated on a permutation and
   simulated event-drivenly to measure its settle time.

Run:  python examples/gate_level_tour.py
"""

import itertools

from repro.core import Arbiter, BNBNetwork
from repro.hardware import (
    build_bnb_netlist,
    build_function_node,
    build_splitter_netlist,
)
from repro.permutations import random_permutation
from repro.sim import GateLevelSimulator
from repro.viz import render_function_node, render_splitter


def tour_function_node() -> None:
    print(render_function_node())
    netlist = build_function_node()
    print(f"\ngates: {netlist.gate_count}, depth: {netlist.critical_path_length()}")
    print("x1 x2 z_d | z_u y1 y2")
    for x1, x2, z_down in itertools.product([0, 1], repeat=3):
        out = netlist.evaluate({"x1": x1, "x2": x2, "z_down": z_down})
        print(
            f" {x1}  {x2}  {z_down}  |  {out['z_up']}   {out['y1']}  {out['y2']}"
        )
    print()


def tour_arbiter() -> None:
    bits = [1, 0, 0, 1, 1, 0, 1, 0]
    trace = Arbiter(3).trace(bits)
    print(f"A(3) on inputs {bits}:")
    for level in range(2, -1, -1):
        nodes = trace.nodes[level]
        ups = [node.z_up for node in nodes]
        flags = [(node.y1, node.y2) for node in nodes]
        print(f"  level {level}: z_up={ups} (y1,y2)={flags}")
    print(f"  flags to switches: {trace.flags}\n")


def tour_splitter() -> None:
    print(render_splitter(3, [1, 0, 0, 1, 1, 0, 1, 0]))
    netlist = build_splitter_netlist(3)
    census = netlist.group_census()
    print(
        f"\nsp(3) netlist: {census['fn']} arbiter gates, "
        f"{census['swctl']} setting XORs, {census['sw']} switch muxes\n"
    )


def tour_full_network() -> None:
    m = 4
    netlist, ports = build_bnb_netlist(m)
    print(f"Complete gate-level BNB, N = {1 << m}:")
    print(f"  gates: {netlist.gate_count}")
    print(f"  critical path: {netlist.critical_path_length()} gate levels")

    pi = random_permutation(1 << m, rng=3)
    outputs = netlist.evaluate(ports.input_assignment(pi.to_list()))
    print(f"  levelized evaluation of {pi.to_list()[:8]}... -> "
          f"{ports.decode_outputs(outputs)[:8]}... (sorted)")

    simulator = GateLevelSimulator(netlist)
    result = simulator.run(ports.input_assignment(pi.to_list()))
    assert ports.decode_outputs(result.outputs) == list(range(1 << m))
    print(
        f"  event-driven simulation: settled at t = {result.settle_time:.0f} "
        f"after {result.event_count} gate events"
    )
    functional = BNBNetwork(m)
    print(
        f"  (paper-unit delay model for the same network: "
        f"{functional.propagation_delay():.0f} units)"
    )


def main() -> None:
    tour_function_node()
    tour_arbiter()
    tour_splitter()
    tour_full_network()


if __name__ == "__main__":
    main()
