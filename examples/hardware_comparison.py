#!/usr/bin/env python3
"""Regenerate the paper's evaluation: Tables 1 and 2 plus the ratios.

Prints Table 1 (hardware complexities) and Table 2 (propagation delay)
at several sizes, the BNB/Batcher ratio curves, the crossover sizes,
and the measured-vs-analytical delay reconciliation — the library's
equivalent of the paper's Section 5.

Run:  python examples/hardware_comparison.py
"""

from repro.analysis.complexity import (
    batcher_delay,
    bnb_delay,
    delay_leading_ratio,
    hardware_leading_ratio,
)
from repro.analysis.delay import batcher_measured_delay, bnb_measured_delay
from repro.analysis.figures import ratio_crossovers
from repro.analysis.tables import render_table1, render_table2


def main() -> None:
    for n in (64, 1024):
        print(render_table1(n, w=16))
        print()
        print(render_table2(n))
        print("\n" + "=" * 72 + "\n")

    print("BNB/Batcher ratios over size (w = 16 for hardware):")
    print(" N        hardware   delay")
    for m in (3, 5, 8, 12, 16, 20, 24):
        n = 1 << m
        print(
            f" 2^{m:<3}   {hardware_leading_ratio(n, 16):8.4f}  "
            f"{delay_leading_ratio(n):7.4f}"
        )
    print("asymptotic limits: hardware -> 1/3, delay -> 2/3 (the abstract's claim)\n")

    print("Crossover sizes (smallest N where the ratio drops below t):")
    print("  hardware:", ratio_crossovers((0.6, 0.5, 0.45), quantity="hardware"))
    print("  delay   :", ratio_crossovers((0.83, 0.8, 0.75), quantity="delay"))
    print()

    print("Measured structural delay vs closed forms (unit delays):")
    print(" m    BNB measured   Eq.9    Batcher measured   Eq.12")
    for m in range(2, 11):
        n = 1 << m
        print(
            f" {m:<3} {bnb_measured_delay(m):12.0f} {bnb_delay(n):7.0f}"
            f" {batcher_measured_delay(m):16.0f} {batcher_delay(n):8.0f}"
        )


if __name__ == "__main__":
    main()
