#!/usr/bin/env python3
"""Exactly how much can each network do?  A capacity census.

Brute-forces every switch setting of the small log-stage networks to
count the permutations each can realize, compares against N! and the
restricted/unrestricted routers, and prints the census the paper's
introduction summarizes qualitatively.

Run:  python examples/capacity_census.py
"""

import math

from repro.baselines import NassimiSahniRouter, benes_switch_count
from repro.permutations import random_permutation
from repro.topology import (
    baseline_network,
    butterfly_network,
    flip_network,
    omega_network,
    path_multiplicity,
    permutation_capacity,
)


def census(n: int) -> None:
    total = math.factorial(n)
    print(f"N = {n}: {total} permutations exist")
    for name, build in (
        ("baseline", baseline_network),
        ("omega", omega_network),
        ("butterfly", butterfly_network),
        ("flip", flip_network),
    ):
        network = build(n)
        capacity = permutation_capacity(network)
        print(
            f"  {name:<10} {network.switch_count:>2} switches -> "
            f"{capacity:>5} realizable ({capacity / total:7.2%}), "
            f"{path_multiplicity(network)} path(s) per pair"
        )
    print()


def routers(n: int) -> None:
    m = n.bit_length() - 1
    ns = NassimiSahniRouter(m)
    sampled = 300
    fraction = sum(
        ns.can_route(random_permutation(n, rng=s)) for s in range(sampled)
    ) / sampled
    print(
        f"  Nassimi-Sahni on Benes ({benes_switch_count(n)} switches): "
        f"~{fraction:.1%} of uniform permutations"
    )
    print("  Benes + looping: 100% (with a global setup computation)")
    print("  BNB            : 100%, self-routing (Theorem 2)\n")


def main() -> None:
    for n in (4, 8):
        census(n)
    print("Restricted vs full routers at N = 16:")
    routers(16)
    print(
        "The gap between 2^S settings and N! permutations is the paper's\n"
        "problem statement; the BNB network closes it with O(N log^3 N)\n"
        "hardware instead of a global routing computation."
    )


if __name__ == "__main__":
    main()
