#!/usr/bin/env python3
"""Export Graphviz DOT drawings of the networks and the arbiter tree.

Writes ``.dot`` files for the baseline/omega/butterfly/flip skeletons,
the Benes fabric, and an annotated live arbiter pass — render them with
``dot -Tpng file.dot -o file.png`` or any online Graphviz viewer.

Run:  python examples/draw_networks.py [output_dir]
"""

import pathlib
import sys

from repro.baselines import BenesNetwork
from repro.topology import (
    baseline_network,
    butterfly_network,
    flip_network,
    omega_network,
)
from repro.viz import arbiter_to_dot, multistage_to_dot


def main() -> None:
    directory = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(
        "dot_out"
    )
    directory.mkdir(exist_ok=True)

    drawings = {
        "baseline_8.dot": multistage_to_dot(
            baseline_network(8), title="baseline network, N=8 (Fig. 1 skeleton)"
        ),
        "omega_8.dot": multistage_to_dot(omega_network(8), title="omega, N=8"),
        "butterfly_8.dot": multistage_to_dot(
            butterfly_network(8), title="butterfly, N=8"
        ),
        "flip_8.dot": multistage_to_dot(flip_network(8), title="flip, N=8"),
        "benes_8.dot": multistage_to_dot(
            BenesNetwork(3).fabric, title="Benes fabric, N=8"
        ),
        "arbiter_live.dot": arbiter_to_dot(3, bits=[1, 0, 0, 1, 1, 0, 1, 0]),
    }
    for name, text in drawings.items():
        path = directory / name
        path.write_text(text + "\n")
        nodes = sum(1 for line in text.splitlines() if "[" in line and "->" not in line)
        print(f"wrote {path} ({nodes} nodes)")
    print(f"\nRender with: dot -Tpng {directory}/baseline_8.dot -o baseline_8.png")


if __name__ == "__main__":
    main()
