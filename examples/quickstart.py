#!/usr/bin/env python3
"""Quickstart: route a permutation through the BNB network.

Builds a 16-input BNB self-routing permutation network, feeds it a
random permutation of destination addresses, and shows that every word
arrives at its addressed output with no global routing computation —
Theorem 2 of the paper in a dozen lines.

Run:  python examples/quickstart.py
"""

from repro import BNBNetwork, Word, random_permutation
from repro.viz import render_bnb_profile


def main() -> None:
    m = 4  # N = 2**4 = 16 inputs
    network = BNBNetwork(m)
    print(f"Built {network!r}")
    print(f"  2x2 switch slices : {network.switch_count}")
    print(f"  function nodes    : {network.function_node_count}")
    print(f"  propagation delay : {network.propagation_delay():.0f} units")
    print()

    pi = random_permutation(network.n, rng=2026)
    print(f"Routing request (input j -> output pi(j)): {pi.to_list()}")

    words = [Word(address=pi(j), payload=f"from-{j}") for j in range(network.n)]
    outputs, _record = network.route(words)

    print("Delivered outputs:")
    for line, word in enumerate(outputs):
        print(f"  output {line:>2}: address={word.address:>2} payload={word.payload}")
    assert all(w.address == line for line, w in enumerate(outputs))
    print("\nEvery word reached its destination — no conflicts, no setup phase.")
    print()
    print(render_bnb_profile(m))


if __name__ == "__main__":
    main()
