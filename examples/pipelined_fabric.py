#!/usr/bin/env python3
"""Streaming permutations through the pipelined BNB fabric.

The paper's Eq. 9 is the latency of one permutation; a fabric in a real
switch runs them back to back.  Because every main stage's decisions
are local to the words it holds, the main stages pipeline cleanly:
after an (m + 1)-cycle fill, one complete permutation emerges per
cycle.  This example streams a burst of permutations, prints the
per-cycle completion trace, and compares pipelined vs unpipelined cycle
counts.

Run:  python examples/pipelined_fabric.py
"""

from repro.core import PipelinedBNBFabric
from repro.permutations import PermutationSampler


def stream_demo(m: int, batches: int) -> None:
    fabric = PipelinedBNBFabric(m)
    sampler = PermutationSampler(1 << m, seed=2026)
    print(f"Streaming {batches} permutations through a {1 << m}-port fabric "
          f"({m} pipeline stages):")
    completions = []
    for i in range(batches):
        fabric.offer(sampler.draw().to_list(), tag=f"perm{i}")
        done = fabric.step()
        completions.append([tag for tag, _out in done])
    while fabric.in_flight:
        done = fabric.step()
        completions.append([tag for tag, _out in done])

    for cycle, tags in enumerate(completions):
        marker = ", ".join(tags) if tags else "-"
        print(f"  cycle {cycle:>2}: completed {marker}")

    stats = fabric.stats()
    print(f"\n  fill latency : {stats.fill_latency} cycles (m + 1 = {m + 1})")
    print(f"  delivered    : {stats.delivered}/{stats.accepted}")
    print(f"  throughput   : {stats.throughput:.2f} permutations/cycle")
    unpipelined = batches * (m + 1)
    print(
        f"  cycles used  : {stats.cycles} "
        f"(unpipelined back-to-back would take {unpipelined})\n"
    )


def main() -> None:
    stream_demo(m=3, batches=8)
    stream_demo(m=5, batches=16)


if __name__ == "__main__":
    main()
