#!/usr/bin/env python3
"""What does a stuck switch do to a self-routing fabric?

Injects single stuck-at faults into a BNB network's switch settings,
replays traffic through the faulted fabric, and reports the blast
radius (misrouted outputs per fault) and the detection rate of an
output-side address check.  Ends with a gate-level view: the same
fault class simulated on the splitter netlist.

Run:  python examples/fault_injection.py
"""

from repro.core import BNBNetwork, Word
from repro.faults import (
    SwitchCoordinate,
    extract_controls,
    fault_coverage_experiment,
    inject_stuck_control,
    misrouted_outputs,
    replay_controls,
)
from repro.permutations import random_permutation
from repro.viz import render_routing_trace


def single_fault_walkthrough() -> None:
    m = 3
    network = BNBNetwork(m)
    pi = random_permutation(8, rng=21)
    words = [Word(address=pi(j), payload=j) for j in range(8)]
    outputs, record = network.route(words, record=True)
    assert record is not None

    print("Fault-free routing:")
    print(render_routing_trace(network, record, words))

    coordinate = SwitchCoordinate(
        main_stage=0, nested=0, nested_stage=0, box=0, switch=1
    )
    table = extract_controls(record)
    healthy = table[(0, 0, 0, 0)][1]
    print(
        f"\nSticking switch {coordinate} at {1 - healthy} "
        f"(healthy control was {healthy})..."
    )
    faulty = replay_controls(
        m, words, inject_stuck_control(table, coordinate, 1 - healthy)
    )
    bad = misrouted_outputs(faulty)
    print(f"Misrouted outputs: {bad}")
    for line in bad:
        print(
            f"  output {line}: got address {faulty[line].address} "
            f"(wanted {line}) — detected by the address check"
        )


def coverage_study() -> None:
    print("\nSingle-stuck-at coverage study (random faults, random traffic):")
    print(" m   trials  activation  detection|activated  blast radius histogram")
    for m in (3, 4, 5):
        report = fault_coverage_experiment(m, trials=120, seed=m)
        print(
            f" {m}   {report.trial_count:>5}   {report.activation_rate:9.2f}"
            f"   {report.detection_rate_given_activation:18.2f}"
            f"   {report.blast_radius_histogram()}"
        )
    print(
        "\nReading: ~half of random stuck values coincide with the healthy\n"
        "control (inactive); every activated fault displaces exactly one\n"
        "switch's pair of words, so the blast radius is 2 and an address\n"
        "check at the outputs detects 100% of activated faults."
    )


def adaptive_model_and_recovery() -> None:
    from repro.faults import (
        recovery_experiment,
        route_with_stuck_switch,
    )

    print("\nAdaptive model (downstream arbiters re-decide on live data):")
    m = 4
    coordinate = SwitchCoordinate(0, 0, 0, 0, 0)
    masked = 0
    for seed in range(20):
        pi = random_permutation(16, rng=seed)
        words = [Word(address=pi(j), payload=j) for j in range(16)]
        for value in (0, 1):
            outputs = route_with_stuck_switch(m, words, coordinate, value)
            masked += not misrouted_outputs(outputs)
    print(
        f"  stage-0 stuck switch masked in {masked}/40 runs — later\n"
        f"  splitters of the same bit-sorter network re-sort the bit."
    )

    print("\nDetect-and-reroute recovery (misdelivered words re-injected):")
    for m in (3, 4):
        stats = recovery_experiment(m, trials=40, seed=m)
        print(
            f"  N={1 << m:>2}: recovery rate {stats['recovery_rate']:.2f}, "
            f"mean passes {stats['mean_passes']:.2f}, "
            f"worst {stats['worst_passes']:.0f}"
        )
    print(
        "  (unrecoverable cases are final-stage faults that every repair\n"
        "   arrangement re-exercises)"
    )


def main() -> None:
    single_fault_walkthrough()
    coverage_study()
    adaptive_model_and_recovery()


if __name__ == "__main__":
    main()
